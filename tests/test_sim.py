"""Unit tests for the discrete-event simulator substrate."""

import pytest

from repro.errors import DeadlockError, SimTimeout, TaskCancelled
from repro.sim import Future, SimEvent, SimQueue, Semaphore, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestEventQueue:
    def test_events_run_in_time_order(self, sim):
        log = []
        sim.schedule(5.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(9.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_same_time_events_run_fifo(self, sim):
        log = []
        for tag in range(5):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cancelled_event_does_not_fire(self, sim):
        log = []
        ev = sim.schedule(1.0, log.append, "x")
        ev.cancel()
        sim.run()
        assert log == []

    def test_run_until_stops_clock(self, sim):
        log = []
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == []
        assert sim.now == 5.0
        sim.run()
        assert log == ["late"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_determinism_same_seed(self):
        def trace(seed):
            s = Simulator(seed=seed)
            out = []

            def job():
                for _ in range(10):
                    yield s.rng.random() * 3
                    out.append(round(s.now, 9))

            s.run_task(job())
            return out

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestFuture:
    def test_resolve_and_result(self, sim):
        fut = sim.create_future("f")
        assert not fut.done
        fut.resolve(13)
        assert fut.done and fut.result() == 13

    def test_fail_raises_on_result(self, sim):
        fut = sim.create_future("f")
        fut.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            fut.result()

    def test_pending_result_raises(self, sim):
        with pytest.raises(RuntimeError):
            sim.create_future().result()

    def test_double_resolution_ignored(self, sim):
        fut = sim.create_future()
        fut.resolve(1)
        fut.resolve(2)
        fut.fail(ValueError())
        assert fut.result() == 1

    def test_callback_fires_immediately_when_done(self, sim):
        fut = sim.create_future()
        fut.resolve("v")
        seen = []
        fut.add_callback(lambda f: seen.append(f.result()))
        assert seen == ["v"]


class TestTasks:
    def test_task_sleeps_virtual_time(self, sim):
        def job():
            yield 3.0
            yield 2.0
            return sim.now

        assert sim.run_task(job()) == 5.0

    def test_task_blocks_on_future(self, sim):
        fut = sim.create_future()

        def job():
            value = yield fut
            return value * 2

        sim.schedule(4.0, fut.resolve, 21)
        assert sim.run_task(job()) == 42
        assert sim.now == 4.0

    def test_future_failure_raises_inside_task(self, sim):
        fut = sim.create_future()

        def job():
            try:
                yield fut
            except ValueError as exc:
                return f"caught {exc}"

        sim.schedule(1.0, fut.fail, ValueError("bad"))
        assert sim.run_task(job()) == "caught bad"

    def test_yield_from_subprocedure(self, sim):
        def inner(x):
            yield 1.0
            return x + 1

        def outer():
            a = yield from inner(1)
            b = yield from inner(a)
            return b

        assert sim.run_task(outer()) == 3
        assert sim.now == 2.0

    def test_task_waits_on_task(self, sim):
        def child():
            yield 5.0
            return "done"

        def parent():
            t = sim.spawn(child())
            result = yield t
            return result

        assert sim.run_task(parent()) == "done"

    def test_task_exception_propagates(self, sim):
        def job():
            yield 1.0
            raise RuntimeError("kernel panic")

        with pytest.raises(RuntimeError, match="kernel panic"):
            sim.run_task(job())

    def test_cancel_throws_into_generator(self, sim):
        cleaned = []

        def job():
            try:
                yield sim.create_future()  # blocks forever
            except TaskCancelled:
                cleaned.append(True)
                raise

        task = sim.spawn(job())
        sim.schedule(2.0, task.cancel)
        with pytest.raises(DeadlockError):
            # run_task on a *different* task would be cleaner; drive directly
            sim.run_task(job(), name="other")
        sim.run()
        assert cleaned == [True]
        assert task.finished

    def test_deadlock_detection(self, sim):
        def job():
            yield sim.create_future()  # nothing will resolve this

        with pytest.raises(DeadlockError):
            sim.run_task(job())

    def test_unsupported_yield_fails_task(self, sim):
        def job():
            yield "nonsense"

        with pytest.raises(TypeError):
            sim.run_task(job())


class TestTimeoutsAndGather:
    def test_with_timeout_expires(self, sim):
        fut = sim.create_future()

        def job():
            yield sim.with_timeout(fut, 5.0, "poll")

        with pytest.raises(SimTimeout):
            sim.run_task(job())
        assert sim.now == 5.0

    def test_with_timeout_resolves_in_time(self, sim):
        fut = sim.create_future()
        sim.schedule(2.0, fut.resolve, "ok")

        def job():
            return (yield sim.with_timeout(fut, 5.0))

        assert sim.run_task(job()) == "ok"

    def test_gather_collects_in_order(self, sim):
        futs = [sim.create_future(str(i)) for i in range(3)]
        sim.schedule(3.0, futs[0].resolve, "a")
        sim.schedule(1.0, futs[1].resolve, "b")
        sim.schedule(2.0, futs[2].resolve, "c")

        def job():
            return (yield sim.gather(futs))

        assert sim.run_task(job()) == ["a", "b", "c"]

    def test_gather_empty(self, sim):
        def job():
            return (yield sim.gather([]))

        assert sim.run_task(job()) == []

    def test_gather_fails_fast(self, sim):
        futs = [sim.create_future(), sim.create_future()]
        sim.schedule(1.0, futs[1].fail, ValueError("x"))

        def job():
            yield sim.gather(futs)

        with pytest.raises(ValueError):
            sim.run_task(job())


class TestSyncPrimitives:
    def test_queue_put_then_get(self, sim):
        q = SimQueue(sim)
        q.put("item")

        def job():
            return (yield from q.get())

        assert sim.run_task(job()) == "item"

    def test_queue_get_blocks_until_put(self, sim):
        q = SimQueue(sim)

        def job():
            return (yield from q.get())

        sim.schedule(7.0, q.put, "late")
        assert sim.run_task(job()) == "late"
        assert sim.now == 7.0

    def test_queue_fifo_wakeups(self, sim):
        q = SimQueue(sim)
        got = []

        def consumer(tag):
            item = yield from q.get()
            got.append((tag, item))

        sim.spawn(consumer("c1"))
        sim.spawn(consumer("c2"))
        sim.schedule(1.0, q.put, "x")
        sim.schedule(2.0, q.put, "y")
        sim.run()
        assert got == [("c1", "x"), ("c2", "y")]

    def test_event_wait_and_set(self, sim):
        ev = SimEvent(sim)
        woke = []

        def waiter():
            yield from ev.wait()
            woke.append(sim.now)

        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.schedule(4.0, ev.set)
        sim.run()
        assert woke == [4.0, 4.0]

    def test_event_wait_after_set_is_instant(self, sim):
        ev = SimEvent(sim)
        ev.set()

        def waiter():
            yield from ev.wait()
            return sim.now

        assert sim.run_task(waiter()) == 0.0

    def test_semaphore_mutual_exclusion(self, sim):
        sem = Semaphore(sim, value=1)
        trace = []

        def worker(tag):
            yield from sem.acquire()
            trace.append(("in", tag, sim.now))
            yield 5.0
            trace.append(("out", tag, sim.now))
            sem.release()

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run()
        assert trace == [("in", "a", 0.0), ("out", "a", 5.0),
                         ("in", "b", 5.0), ("out", "b", 10.0)]

    def test_semaphore_negative_value_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)
