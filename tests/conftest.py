"""Shared fixtures for the LOCUS reproduction test suite."""

import pytest

from repro import LocusCluster


@pytest.fixture
def cluster():
    """Three sites, root filegroup replicated everywhere."""
    return LocusCluster(n_sites=3, seed=7)


@pytest.fixture
def sh(cluster):
    """A shell on site 0."""
    return cluster.shell(0)


@pytest.fixture
def cluster5():
    """Five sites; root packs only on sites 0-2 (3 and 4 are diskless for
    the root filegroup, i.e. pure using sites)."""
    return LocusCluster(n_sites=5, seed=7, root_pack_sites=[0, 1, 2])
