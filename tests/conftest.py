"""Shared fixtures for the LOCUS reproduction test suite.

``LOCUS_COST_FLAGS`` (used by the CI matrix) applies CostModel overrides
to every cluster a test builds with the *default* cost, so the
consistency suites re-run under the optimisation flags without editing
any test.  Clusters built with an explicit CostModel keep it — tests
that pin exact message counts stay pinned.  Example::

    LOCUS_COST_FLAGS="batch_writes=1,pull_manifest=1,batch_pages=4" \
        pytest tests/
"""

import os

import pytest

from repro import LocusCluster
from repro.config import CostModel


def _env_cost_overrides():
    defaults = CostModel()
    out = {}
    for part in os.environ.get("LOCUS_COST_FLAGS", "").split(","):
        part = part.strip()
        if not part:
            continue
        key, __, val = part.partition("=")
        key, val = key.strip(), (val.strip() or "1")
        current = getattr(defaults, key)     # unknown keys fail loudly
        if isinstance(current, bool):
            out[key] = val.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, int):
            out[key] = int(val)
        else:
            out[key] = float(val)
    return out


_OVERRIDES = _env_cost_overrides()
if _OVERRIDES:
    _orig_init = LocusCluster.__init__

    def _flagged_init(self, n_sites=3, seed=0, cost=None, config=None,
                      root_pack_sites=None):
        if cost is None and config is None:
            cost = CostModel().with_overrides(**_OVERRIDES)
        _orig_init(self, n_sites=n_sites, seed=seed, cost=cost,
                   config=config, root_pack_sites=root_pack_sites)

    LocusCluster.__init__ = _flagged_init


@pytest.fixture
def cluster():
    """Three sites, root filegroup replicated everywhere."""
    return LocusCluster(n_sites=3, seed=7)


@pytest.fixture
def sh(cluster):
    """A shell on site 0."""
    return cluster.shell(0)


@pytest.fixture
def cluster5():
    """Five sites; root packs only on sites 0-2 (3 and 4 are diskless for
    the root filegroup, i.e. pure using sites)."""
    return LocusCluster(n_sites=5, seed=7, root_pack_sites=[0, 1, 2])
