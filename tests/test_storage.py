"""Unit tests for packs, inodes, the buffer cache, and shadow-page commit."""

import pytest

from repro.errors import EINVAL, ENOSPC
from repro.storage import (BufferCache, DiskInode, FileType, Pack, ShadowFile,
                           VersionVector)
from repro.storage.pack import INO_SHIFT, ROOT_INO, pack_index_of


class TestPackBlocks:
    def test_alloc_write_read_roundtrip(self):
        pack = Pack(gfs=0, site_id=0, pack_index=0)
        b = pack.alloc_block()
        pack.write_block(b, b"hello")
        assert pack.read_block(b) == b"hello"

    def test_free_block_is_reused(self):
        pack = Pack(0, 0, 0)
        b1 = pack.alloc_block()
        pack.free_block(b1)
        b2 = pack.alloc_block()
        assert b2 == b1

    def test_exhaustion_raises_enospc(self):
        pack = Pack(0, 0, 0, n_blocks=2)
        pack.alloc_block()
        pack.alloc_block()
        with pytest.raises(ENOSPC):
            pack.alloc_block()

    def test_blocks_in_use_accounting(self):
        pack = Pack(0, 0, 0)
        blocks = [pack.alloc_block() for _ in range(5)]
        pack.free_block(blocks[0])
        assert pack.blocks_in_use == 4


class TestInodeAllocation:
    def test_pack_zero_starts_at_root_ino(self):
        pack = Pack(0, 0, 0)
        inode = pack.alloc_inode()
        assert inode.ino == ROOT_INO

    def test_pools_are_disjoint_across_packs(self):
        """Section 2.3.7: each physical container allocates from its own
        collection of inode numbers, so partitioned creates never collide."""
        packs = [Pack(0, s, s) for s in range(4)]
        inos = set()
        for pack in packs:
            for _ in range(100):
                ino = pack.alloc_inode().ino
                assert ino not in inos
                inos.add(ino)
                assert pack.owns_ino(ino)

    def test_pack_index_recoverable_from_ino(self):
        pack = Pack(0, 7, 3)
        ino = pack.alloc_inode().ino
        assert pack_index_of(ino) == 3
        assert ino >> INO_SHIFT == 3

    def test_release_returns_ino_to_owner_pool(self):
        pack = Pack(0, 0, 2)
        ino = pack.alloc_inode().ino
        pack.release_inode(ino)
        assert pack.alloc_inode().ino == ino

    def test_install_inode_from_remote(self):
        src = Pack(0, 0, 0)
        inode = src.alloc_inode(ftype=FileType.DIRECTORY, owner="alice")
        dst = Pack(0, 1, 1)
        installed = dst.install_inode(inode.attrs(), has_data=False)
        assert installed.ino == inode.ino
        assert installed.ftype is FileType.DIRECTORY
        assert installed.owner == "alice"
        assert not installed.has_data

    def test_stores_requires_data_and_liveness(self):
        pack = Pack(0, 0, 0)
        inode = pack.alloc_inode()
        assert pack.stores(inode.ino)
        inode.deleted = True
        assert not pack.stores(inode.ino)

    def test_drop_data_frees_pages_keeps_entry(self):
        pack = Pack(0, 0, 0)
        inode = pack.alloc_inode()
        b = pack.alloc_block()
        pack.write_block(b, b"data")
        inode.pages = [b]
        inode.size = 4
        pack.drop_data(inode.ino)
        assert pack.get_inode(inode.ino) is not None
        assert inode.pages == []
        assert pack.blocks_in_use == 0


class TestBufferCache:
    def test_hit_and_miss_counting(self):
        cache = BufferCache(capacity_pages=4)
        cache.put((0, 1, 0), b"page")
        assert cache.get((0, 1, 0)) == b"page"
        assert cache.get((0, 1, 1)) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = BufferCache(capacity_pages=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")           # 'a' is now most-recently used
        cache.put("c", b"3")     # evicts 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_single_page(self):
        cache = BufferCache(4)
        cache.put((0, 5, 0), b"x")
        assert cache.invalidate((0, 5, 0))
        assert not cache.invalidate((0, 5, 0))
        assert cache.stats.invalidations == 1

    def test_invalidate_whole_file(self):
        cache = BufferCache(8)
        for page in range(3):
            cache.put((0, 5, page), b"x")
        cache.put((0, 6, 0), b"y")
        assert cache.invalidate_file(0, 5) == 3
        assert (0, 6, 0) in cache

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(0)


class TestShadowCommit:
    @pytest.fixture
    def pack(self):
        return Pack(gfs=0, site_id=3, pack_index=0)

    @pytest.fixture
    def ino(self, pack):
        inode = pack.alloc_inode()
        return inode.ino

    def test_uncommitted_write_invisible_on_disk(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"new data")
        sf.set_size(8)
        disk = pack.get_inode(ino)
        assert disk.pages == [] and disk.size == 0

    def test_commit_makes_changes_permanent_and_bumps_version(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"persisted")
        sf.set_size(9)
        before = pack.get_inode(ino).version
        sf.commit()
        disk = pack.get_inode(ino)
        assert pack.read_block(disk.pages[0]) == b"persisted"
        assert disk.size == 9
        assert disk.version.get(pack.site_id) == before.get(pack.site_id) + 1

    def test_abort_leaves_original_file(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"original")
        sf.commit()
        sf2 = ShadowFile(pack, ino)
        sf2.write_page(0, b"doomed")
        sf2.truncate()
        sf2.abort()
        disk = pack.get_inode(ino)
        assert pack.read_block(disk.pages[0]) == b"original"
        assert disk.size == 8 or disk.size == 0  # size set by caller path

    def test_old_page_intact_until_commit(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"v1")
        sf.commit()
        old_block = pack.get_inode(ino).pages[0]
        sf2 = ShadowFile(pack, ino)
        sf2.write_page(0, b"v2")
        # Both versions exist on the medium until the commit point.
        assert pack.read_block(old_block) == b"v1"
        sf2.commit()
        # Old block is freed after commit.
        assert old_block in pack._free_blocks or pack.read_block(old_block) == b""

    def test_shadow_page_reused_on_repeated_writes(self, pack, ino):
        sf = ShadowFile(pack, ino)
        b1 = sf.write_page(0, b"first")
        b2 = sf.write_page(0, b"second")
        assert b1 == b2  # "reused in place for subsequent changes"

    def test_commit_with_explicit_version(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"x")
        target = VersionVector({9: 4})
        sf.commit(new_version=target)
        assert pack.get_inode(ino).version == target

    def test_abort_then_no_leak(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"a")
        sf.write_page(1, b"b")
        sf.abort()
        assert pack.blocks_in_use == 0

    def test_truncate_then_commit_frees_blocks(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.write_page(0, b"a")
        sf.write_page(1, b"b")
        sf.commit()
        assert pack.blocks_in_use == 2
        sf2 = ShadowFile(pack, ino)
        sf2.truncate()
        sf2.commit()
        assert pack.blocks_in_use == 0
        assert pack.get_inode(ino).pages == []

    def test_mark_deleted_commits_tombstone(self, pack, ino):
        sf = ShadowFile(pack, ino)
        sf.mark_deleted()
        sf.commit()
        assert pack.get_inode(ino).deleted

    def test_set_attrs_unknown_field_rejected(self, pack, ino):
        sf = ShadowFile(pack, ino)
        with pytest.raises(EINVAL):
            sf.set_attrs(nonsense=1)

    def test_missing_inode_rejected(self, pack):
        with pytest.raises(EINVAL):
            ShadowFile(pack, 999999)

    def test_write_negative_page_rejected(self, pack, ino):
        sf = ShadowFile(pack, ino)
        with pytest.raises(EINVAL):
            sf.write_page(-1, b"x")
