"""Batched page transfer (fs.read_pages / fs.pull_read_range), the widened
readahead window, the pipelined propagation pull, and the two bookkeeping
fixes that ride along (buffer-cache file index, FIFO-floor pruning).
"""

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.net.stats import StatsWindow
from repro.storage.buffer_cache import BufferCache


def _cluster(seed=5, **cost_kw):
    return LocusCluster(n_sites=2, seed=seed, root_pack_sites=[0],
                        cost=CostModel().with_overrides(**cost_kw))


def _make_remote_file(cluster, path, data):
    sh0 = cluster.shell(0)
    sh0.write_file(path, data)
    cluster.settle()
    return sh0.stat(path)


def _open_remote(cluster, attrs):
    from repro.fs.types import Mode
    site1 = cluster.site(1)
    return site1, cluster.call(
        1, site1.fs.open_gfile((0, attrs["ino"]), Mode.READ))


class TestBatchedRead:
    def test_multi_page_read_uses_few_messages(self):
        data = bytes(range(256)) * 32            # 8 pages
        cluster = _cluster(batch_pages=4, readahead=False)
        attrs = _make_remote_file(cluster, "/f", data)
        site1, handle = _open_remote(cluster, attrs)
        win = StatsWindow(cluster.stats)
        assert cluster.call(1, site1.fs.read(handle, 0, len(data))) == data
        snap = win.close()
        assert snap.sent["fs.read_pages"] == 2   # ceil(8 / 4)
        assert "fs.read_page" not in snap.sent
        assert cluster.stats.pages_per_message("fs.read_pages") == 4.0

    def test_batched_content_identical_to_unbatched(self):
        data = b"".join(bytes([i % 251]) * 97 for i in range(80))
        for kw in ({}, {"batch_pages": 4, "readahead_window": 4}):
            cluster = _cluster(**kw)
            _make_remote_file(cluster, "/f", data)
            assert cluster.shell(1).read_file("/f") == data

    def test_single_page_requests_keep_paper_protocol(self):
        cluster = _cluster(batch_pages=4, readahead=False)
        attrs = _make_remote_file(cluster, "/f", b"q" * 100)   # one page
        site1, handle = _open_remote(cluster, attrs)
        win = StatsWindow(cluster.stats)
        assert cluster.call(1, site1.fs.read(handle, 0, 100)) == b"q" * 100
        snap = win.close()
        assert snap.sent.get("fs.read_page", 0) == 1
        assert "fs.read_pages" not in snap.sent

    def test_readahead_window_batches_lookahead(self):
        psz = CostModel().page_size
        data = b"r" * (psz * 8)
        cluster = _cluster(batch_pages=4, readahead_window=4)
        attrs = _make_remote_file(cluster, "/f", data)
        site1 = cluster.site(1)
        from repro.fs.types import Mode
        handle = cluster.call(
            1, site1.fs.open_gfile((0, attrs["ino"]), Mode.READ))
        win = StatsWindow(cluster.stats)
        # Page 0 then page 1: the second (sequential) read opens the
        # readahead window, which travels as one fs.read_pages batch.
        assert cluster.call(1, site1.fs.read(handle, 0, psz)) == data[:psz]
        assert cluster.call(1, site1.fs.read(handle, psz, psz)) \
            == data[psz:2 * psz]
        cluster.settle()
        snap = win.close()
        assert snap.sent["fs.read_page"] == 2          # the demand reads
        assert snap.sent["fs.read_pages"] == 1         # pages 2-5 together
        # Pages 2-5 are now cached: reading them sends nothing.
        win2 = StatsWindow(cluster.stats)
        assert cluster.call(1, site1.fs.read(handle, 2 * psz, 4 * psz)) \
            == data[2 * psz:6 * psz]
        assert win2.close().total_messages == 0
        cluster.call(1, site1.fs.close(handle))


class TestBatchedPull:
    def _pull_stats(self, **cost_kw):
        cluster = LocusCluster(n_sites=2, seed=9,
                               cost=CostModel().with_overrides(**cost_kw))
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        sh0.write_file("/big", b"s")
        cluster.settle()                       # tiny initial propagation
        data = bytes((i * 7) % 256 for i in range(16 * 1024))   # 16 pages
        sh0.write_file("/big", data)
        # Measure from here: the local write is done and the commit notify
        # is already on the wire, so window and clock see (almost) only the
        # 16-page propagation pull at site 1.
        t0 = cluster.sim.now
        win = StatsWindow(cluster.stats)
        cluster.settle()                       # the measured pull
        snap = win.close()
        vtime = cluster.sim.now - t0
        site1 = cluster.site(1)
        pulled = b"".join(
            cluster.call(1, site1.fs._committed_block((0, 2), p))
            for p in range(16))
        # /big is ino 2 (first allocation after the root): verify from the
        # inode rather than assuming, to keep the check honest.
        ino = sh0.stat("/big")["ino"]
        assert ino == 2
        return cluster, snap, vtime, pulled[:len(data)], data

    def test_pull_uses_range_messages_and_pipelines(self):
        cluster, snap, __, pulled, data = self._pull_stats(
            batch_pages=4, pull_pipeline=2)
        assert pulled == data
        assert snap.sent["fs.pull_read_range"] == 4    # 16 pages / 4
        assert "fs.pull_read" not in snap.sent
        prop = cluster.site(1).fs.propagator.stats     # cumulative
        assert prop.range_requests >= 4
        assert prop.pipelined_rounds >= 2              # 4 chunks / depth 2
        assert prop.pages_pulled >= 16

    def test_pipelined_pull_is_faster_and_lighter(self):
        __, snap_off, vtime_off, pulled_off, data = self._pull_stats()
        __, snap_on, vtime_on, pulled_on, __ = self._pull_stats(
            batch_pages=4, pull_pipeline=4)
        assert pulled_off == data and pulled_on == data
        pull_msgs_off = (snap_off.sent["fs.pull_read"]
                         + snap_off.sent["fs.pull_read.resp"])
        pull_msgs_on = (snap_on.sent["fs.pull_read_range"]
                        + snap_on.sent["fs.pull_read_range.resp"])
        assert pull_msgs_on * 2 <= pull_msgs_off
        assert vtime_on * 2 <= vtime_off, (vtime_on, vtime_off)


class TestWriteBatchCostModel:
    """Pin the cost accounting that makes T15's on/off deltas attributable:
    the per-page write path pays the per-message fixed cost (latency +
    header serialization + packet assembly) once *per page*, while one
    ``fs.write_pages`` batch pays it once per message and charges wire
    time on the summed payload."""

    def test_message_delay_arithmetic(self):
        cost = CostModel()
        for n in (0, 1, 1024, 4096):
            assert cost.message_delay(n) == (
                cost.net_latency
                + (n + cost.msg_header_bytes) * cost.net_per_byte)

    def test_staged_flush_is_one_message_with_summed_payload(self):
        psz = CostModel().page_size
        cluster = _cluster(batch_writes=True, batch_pages=4)
        attrs = _make_remote_file(cluster, "/f", b"0" * (4 * psz))
        site1 = cluster.site(1)
        from repro.fs.types import Mode
        handle = cluster.call(
            1, site1.fs.open_gfile((0, attrs["ino"]), Mode.WRITE))
        win = StatsWindow(cluster.stats)
        for p in range(4):
            cluster.call(1, site1.fs.write(handle, p * psz,
                                           bytes([p]) * psz))
        snap = win.close()
        # Four whole-page writes, batch_pages=4: exactly one flush message.
        assert snap.sent.get("fs.write_pages", 0) == 1
        assert "fs.write_page" not in snap.sent
        assert cluster.stats.pages_per_message("fs.write_pages") == 4.0
        # The wire charges the summed page payload (plus small framing):
        # the batch can never smuggle data past the byte-time model.
        assert snap.total_bytes >= 4 * psz
        cluster.call(1, site1.fs.commit(handle))
        cluster.call(1, site1.fs.close(handle))
        cluster.settle()
        assert cluster.shell(0).read_file("/f") == b"".join(
            bytes([p]) * psz for p in range(4))

    def test_fixed_cost_paid_once_per_message_not_per_page(self):
        """The attributable delta: batching 4 pages into one message saves
        exactly 3 per-message fixed costs of wire time (the payload bytes
        still pay full fare)."""
        cost = CostModel()
        psz = cost.page_size
        fixed = cost.message_delay(0)
        four_singles = 4 * cost.message_delay(psz)
        one_batch = cost.message_delay(4 * psz)
        assert one_batch == pytest.approx(
            four_singles - 3 * fixed)

    def test_single_page_flush_keeps_paper_message(self):
        """A one-page flush must stay on the paper-exact fs.write_page
        wire format (no batched framing for the degenerate case)."""
        cluster = _cluster(batch_writes=True, batch_pages=4)
        win = StatsWindow(cluster.stats)
        cluster.shell(1).write_file("/one", b"q" * 100)
        cluster.settle()
        snap = win.close()
        assert "fs.write_pages" not in snap.sent
        assert snap.sent.get("fs.write_page", 0) >= 1


class TestBufferCacheIndex:
    """The per-file key index must mirror the page map through every
    mutation path, including LRU eviction (the old whole-cache scans are
    gone; a desynchronized index would silently skip invalidations)."""

    def test_index_consistent_through_eviction_and_invalidation(self):
        cache = BufferCache(capacity_pages=8)
        for ino in range(4):
            for page in range(4):                  # 16 puts into 8 slots
                cache.put((0, ino, page), bytes([ino, page]))
                assert cache.check_index()
        assert len(cache) == 8
        assert cache.stats.evictions == 8
        cache.invalidate((0, 3, 0))
        assert cache.check_index()
        cache.invalidate_file(0, 2)
        assert cache.check_index()
        assert all(k[1] != 2 for k in cache._pages)

    def test_invalidate_committed_drops_only_committed_view(self):
        cache = BufferCache(capacity_pages=8)
        cache.put((0, 1, 0), b"incore")
        cache.put((0, 1, 0, "c"), b"committed")
        cache.put((0, 1, 1, "c"), b"committed2")
        assert cache.invalidate_committed(0, 1) == 2
        assert cache.check_index()
        assert (0, 1, 0) in cache
        assert (0, 1, 0, "c") not in cache
        assert cache.invalidate_file(0, 1) == 1
        assert len(cache) == 0 and cache.check_index()

    def test_foreign_keys_survive_file_invalidation(self):
        cache = BufferCache(capacity_pages=8)
        cache.put("exec:prog", b"image")           # non-tuple key
        cache.put((0, 1, 0), b"page")
        cache.invalidate_file(0, 1)
        assert cache.peek("exec:prog") == b"image"
        assert cache.check_index()


class TestFifoFloorPruning:
    def test_last_delivery_cleared_when_circuit_closes(self):
        cluster = LocusCluster(n_sites=3, seed=5)
        cluster.shell(0).write_file("/f", b"x")
        cluster.shell(1).read_file("/f")
        cluster.settle()
        net = cluster.net
        assert any(0 in k and 1 in k for k in net._last_delivery)
        cluster.partition({0}, {1, 2})
        assert not any(0 in k and 1 in k for k in net._last_delivery)
        assert not any(0 in k and 2 in k for k in net._last_delivery)
        cluster.heal()
        cluster.shell(1).read_file("/f")           # traffic flows again
        cluster.settle()

    def test_crash_clears_floors_for_the_dead_site(self):
        cluster = LocusCluster(n_sites=3, seed=5)
        cluster.shell(0).write_file("/f", b"x")
        cluster.shell(2).read_file("/f")
        cluster.settle()
        cluster.fail_site(2)
        assert not any(2 in k for k in cluster.net._last_delivery)
        cluster.restart_site(2)
        assert cluster.shell(2).read_file("/f") == b"x"
