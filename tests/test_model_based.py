"""Model-based testing: random syscall sequences against a reference model.

A trivial in-memory dictionary filesystem executes the same operation
sequence as the LOCUS cluster; at every step the outcomes must agree
(same success/failure, same content, same directory listings).  Sequences
are generated deterministically from seeds, covering create/write/read/
unlink/mkdir/rename/link interleavings across multiple sites.
"""

import random

import pytest

from repro import LocusCluster
from repro.errors import (EEXIST, EINVAL, EISDIR, ENOENT, ENOTDIR,
                          ENOTEMPTY, FsError)


class ModelFs:
    """The reference: a path-keyed dict with Unix-ish error behaviour."""

    def __init__(self):
        self.files = {}            # path -> bytes (hard links share via id)
        self.dirs = {"/"}
        self.links = {}            # path -> inode id
        self.inodes = {}           # inode id -> bytes
        self._next = 0

    def _parent_check(self, path):
        """Raise the Unix error for a bad ancestor; return on good ones.

        Mirrors pathname walking: the *first* bad ancestor decides whether
        the error is ENOTDIR (a file in the middle) or ENOENT (missing).
        """
        parts = [p for p in path.split("/") if p]
        prefix = ""
        for comp in parts[:-1]:
            prefix += "/" + comp
            if prefix in self.links:
                raise ENOTDIR(path)
            if prefix not in self.dirs:
                raise ENOENT(path)

    def _missing(self, path):
        """Classify a lookup miss of the final component."""
        self._parent_check(path)
        raise ENOENT(path)

    def _exists(self, path):
        return path in self.links or path in self.dirs

    def write_file(self, path, data):
        if path == "/" or path in self.dirs:
            raise EISDIR(path)
        self._parent_check(path)
        if path in self.links:
            self.inodes[self.links[path]] = data
        else:
            self._next += 1
            self.links[path] = self._next
            self.inodes[self._next] = data

    def read_file(self, path):
        if path in self.dirs:
            return "DIR"       # 1983 Unix let you read() directories
        if path not in self.links:
            self._missing(path)
        return self.inodes[self.links[path]]

    def mkdir(self, path):
        parent = path.rsplit("/", 1)[0] or "/"
        if parent in self.dirs and self._exists(path):
            raise EEXIST(path)
        self._parent_check(path)
        self.dirs.add(path)

    def rmdir(self, path):
        if path not in self.dirs:
            if path in self.links:
                raise ENOTDIR(path)
            self._missing(path)
        if any(p != path and (p.startswith(path + "/"))
               for p in list(self.dirs) + list(self.links)):
            raise ENOTEMPTY(path)
        self.dirs.discard(path)

    def unlink(self, path):
        if path in self.dirs:
            raise EISDIR(path)
        if path not in self.links:
            self._missing(path)
        ino = self.links.pop(path)
        if ino not in self.links.values():
            self.inodes.pop(ino, None)

    def link(self, old, new):
        if old not in self.links:
            if old in self.dirs:
                raise EISDIR(old)
            self._missing(old)
        if self._exists(new):
            raise EEXIST(new)
        self._parent_check(new)
        self.links[new] = self.links[old]

    def rename(self, old, new):
        if not self._exists(old):
            self._missing(old)
        if self._exists(new):
            raise EEXIST(new)
        self._parent_check(new)
        if old in self.dirs:
            if new == old or new.startswith(old + "/"):
                raise EINVAL("cannot move a directory into itself")
            # Move the directory and its whole subtree.
            moved_dirs = [p for p in self.dirs
                          if p == old or p.startswith(old + "/")]
            moved_links = [p for p in self.links
                           if p.startswith(old + "/")]
            for p in moved_dirs:
                self.dirs.discard(p)
                self.dirs.add(new + p[len(old):])
            for p in moved_links:
                self.links[new + p[len(old):]] = self.links.pop(p)
            return
        self.links[new] = self.links.pop(old)

    def readdir(self, path):
        if path not in self.dirs:
            if path in self.links:
                raise ENOTDIR(path)
            self._missing(path)
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in list(self.dirs) + list(self.links):
            if p != path and p.startswith(prefix):
                rest = p[len(prefix):]
                if "/" not in rest:
                    names.add(rest)
        return sorted(names)


OPS = ("write", "read", "mkdir", "rmdir", "unlink", "link", "rename",
       "readdir")


def _random_path(rng, depth=2):
    parts = [rng.choice("abcd") for __ in range(rng.randint(1, depth))]
    return "/" + "/".join(parts)


def _run_sequence(seed, n_ops=120, n_sites=3):
    rng = random.Random(seed)
    cluster = LocusCluster(n_sites=n_sites, seed=seed)
    shells = [cluster.shell(i) for i in range(n_sites)]
    model = ModelFs()
    agreements = 0
    for step in range(n_ops):
        sh = rng.choice(shells)
        op = rng.choice(OPS)
        path = _random_path(rng)
        other = _random_path(rng)
        data = f"step {step}".encode()

        def on_cluster():
            if op == "write":
                sh.write_file(path, data)
            elif op == "read":
                if sh.stat(path)["ftype"].value in ("directory",
                                                    "hidden_dir"):
                    return "DIR"
                return sh.read_file(path)
            elif op == "mkdir":
                sh.mkdir(path)
            elif op == "rmdir":
                sh.rmdir(path)
            elif op == "unlink":
                sh.unlink(path)
            elif op == "link":
                sh.link(path, other)
            elif op == "rename":
                sh.rename(path, other)
            elif op == "readdir":
                return sh.readdir(path)
            return None

        def on_model():
            if op == "write":
                model.write_file(path, data)
            elif op == "read":
                return model.read_file(path)
            elif op == "mkdir":
                model.mkdir(path)
            elif op == "rmdir":
                model.rmdir(path)
            elif op == "unlink":
                model.unlink(path)
            elif op == "link":
                model.link(path, other)
            elif op == "rename":
                model.rename(path, other)
            elif op == "readdir":
                return model.readdir(path)
            return None

        try:
            got = ("ok", on_cluster())
        except FsError as exc:
            got = ("err", exc.errno)
        # Quiesce: cross-site visibility through unsynchronized reads is
        # guaranteed once propagation lands (the paper's consistency model
        # for directory interrogation).
        cluster.settle()
        try:
            want = ("ok", on_model())
        except FsError as exc:
            want = ("err", exc.errno)
        assert got == want, (
            f"step {step}: {op} {path} {other}: cluster={got} model={want}")
        agreements += 1
    return agreements


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_sequences_match_reference_model(seed):
    assert _run_sequence(seed) == 120


def test_longer_sequence_single_seed():
    assert _run_sequence(seed=42, n_ops=250) == 250
