"""Edge cases of the per-process syscall surface (ProcApi / Shell)."""

import pytest

from repro import LocusCluster, Signal
from repro.errors import (EACCES, EBADF, EINVAL, EISDIR, ENOENT, ESRCH)


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=71)


@pytest.fixture
def sh(cluster):
    return cluster.shell(0)


class TestOpenModes:
    def test_bad_mode_string(self, sh):
        with pytest.raises(EINVAL):
            sh.open("/whatever", "x")

    def test_open_directory_readonly_ok(self, sh):
        sh.mkdir("/d")
        fd = sh.open("/d", "r")
        sh.close(fd)

    def test_open_directory_for_write_rejected(self, sh):
        sh.mkdir("/d")
        with pytest.raises(EISDIR):
            sh.open("/d", "w")

    def test_create_without_write_mode_does_not_create(self, sh):
        with pytest.raises(ENOENT):
            sh.open("/nope", "r", create=True)


class TestSeekAndOffsets:
    def test_bad_whence(self, sh):
        sh.write_file("/f", b"0123")
        fd = sh.open("/f")
        with pytest.raises(EINVAL):
            sh.lseek(fd, 0, "sideways")
        sh.close(fd)

    def test_negative_position_rejected(self, sh):
        sh.write_file("/f", b"0123")
        fd = sh.open("/f")
        with pytest.raises(EINVAL):
            sh.lseek(fd, -10, "set")
        sh.close(fd)

    def test_seek_on_pipe_rejected(self, sh):
        r, w = sh.pipe()
        with pytest.raises(EBADF):
            sh.lseek(r, 0)
        sh.close(r)
        sh.close(w)

    def test_write_moves_shared_offset_past_end(self, sh):
        fd = sh.open("/grow", "w", create=True)
        sh.lseek(fd, 10)
        sh.write(fd, b"tail")
        sh.close(fd)
        assert sh.read_file("/grow") == b"\x00" * 10 + b"tail"


class TestProcessEnvironment:
    def test_advice_list_places_fork(self, cluster, sh):
        where = []

        def child(api):
            where.append(api.site.site_id)
            return 0
            yield  # pragma: no cover

        sh.set_advice([2])
        sh.fork(child)          # no explicit dest: advice decides
        sh.wait()
        assert where == [2]

    def test_setcopies_validation(self, sh):
        with pytest.raises(EINVAL):
            sh.setcopies(0)
        sh.setcopies(2)
        assert sh.api.getcopies() == 2

    def test_exec_missing_load_module(self, cluster, sh):
        with pytest.raises(ENOENT):
            sh.run("/bin/ghost")

    def test_exec_garbage_load_module(self, cluster, sh):
        sh.write_file("/bin-garbled", b"\x00\x01 not json")
        with pytest.raises(EINVAL):
            sh.run("/bin-garbled")

    def test_exec_wrong_cpu_type(self, cluster, sh):
        sh.mkdir("/bin")
        sh.install_program("/bin/pdp-only", "anything", cpu="pdp11")
        with pytest.raises(EINVAL):
            sh.run("/bin/pdp-only", dest=0)   # site 0 is a vax

    def test_kill_self_signal_queue(self, cluster, sh):
        sh.kill(sh.getpid(), Signal.SIGHUP)
        assert Signal.SIGHUP in sh.proc.pending_signals

    def test_errinfo_drains(self, cluster, sh):
        sh.proc.err_info.append({"kind": "synthetic"})
        assert sh.errinfo() == [{"kind": "synthetic"}]
        assert sh.errinfo() == []


class TestFdLifecycles:
    def test_ops_on_never_opened_fd(self, sh):
        with pytest.raises(EBADF):
            sh.read(123, 1)
        with pytest.raises(EBADF):
            sh.write(123, b"x")
        with pytest.raises(EBADF):
            sh.close(123)

    def test_commit_on_pipe_rejected(self, sh):
        r, w = sh.pipe()
        with pytest.raises(EBADF):
            sh.commit(w)
        sh.close(r)
        sh.close(w)

    def test_fstat_reflects_growth(self, sh):
        fd = sh.open("/g", "w", create=True)
        assert sh.fstat(fd)["size"] == 0
        sh.write(fd, b"grow me")
        assert sh.fstat(fd)["size"] == 7
        sh.close(fd)

    def test_two_shells_are_two_processes(self, cluster):
        a = cluster.shell(0)
        b = cluster.shell(0)
        assert a.getpid() != b.getpid()
        fd = a.open("/", "r")
        with pytest.raises(EBADF):
            b.read(fd, 1)       # descriptors are per-process
        a.close(fd)


class TestConcurrentShells:
    def test_interleaved_writers_distinct_files(self, cluster):
        shells = [cluster.shell(i) for i in range(3)]
        for i, s in enumerate(shells):
            s.write_file(f"/from{i}", f"site {i}".encode())
        for i, s in enumerate(shells):
            for j in range(3):
                assert shells[j].read_file(f"/from{i}") == \
                    f"site {i}".encode()

    def test_readdir_sees_all_creations(self, cluster):
        shells = [cluster.shell(i) for i in range(3)]
        cluster.shell(0).mkdir("/spool")
        for i, s in enumerate(shells):
            s.write_file(f"/spool/job{i}", b"j")
        assert cluster.shell(1).readdir("/spool") == \
            ["job0", "job1", "job2"]
