"""The interactive operator console."""

import pytest

from repro.cli import Console


@pytest.fixture
def console():
    return Console(n_sites=3, seed=123)


def run(console, *lines):
    outs = []
    for line in lines:
        outs.append(console.run_command(line))
    return outs


class TestFileCommands:
    def test_write_cat_roundtrip(self, console):
        assert run(console, "write /f hello world")[-1] == "ok"
        assert run(console, "cat /f")[-1] == "hello world"

    def test_mkdir_ls(self, console):
        run(console, "mkdir /d", "write /d/a one", "write /d/b two")
        assert run(console, "ls /d")[-1] == "a  b"
        assert run(console, "ls /nonexistent")[-1].startswith("error:")

    def test_append(self, console):
        run(console, "write /log first", "append /log |second")
        assert run(console, "cat /log")[-1] == "first|second"

    def test_mv_ln_rm(self, console):
        run(console, "write /a data", "ln /a /b", "mv /a /c", "rm /b")
        assert run(console, "cat /c")[-1] == "data"
        assert run(console, "cat /b")[-1].startswith("error:")

    def test_stat_shows_fields(self, console):
        run(console, "write /s abc")
        out = run(console, "stat /s")[-1]
        assert "size: 3" in out and "nlink: 1" in out

    def test_copies_and_storage(self, console):
        run(console, "copies 3", "write /r replicated")
        out = run(console, "stat /r")[-1]
        assert "storage_sites: [0, 1, 2]" in out


class TestTopologyCommands:
    def test_site_switch(self, console):
        run(console, "write /shared seen-everywhere")
        assert run(console, "site 2")[-1] == "now at site 2"
        assert run(console, "cat /shared")[-1] == "seen-everywhere"

    def test_partition_and_heal(self, console):
        run(console, "copies 3", "write /x base")
        out = run(console, "partition 0,1 2")[-1]
        assert "partitioned" in out
        run(console, "write /x left-version")
        assert "healed" in run(console, "heal")[-1]
        run(console, "site 2")
        assert run(console, "cat /x")[-1] == "left-version"

    def test_crash_and_boot(self, console):
        run(console, "copies 3", "write /y durable")
        run(console, "crash 1")
        assert run(console, "cat /y")[-1] == "durable"
        assert "rejoined" in run(console, "boot 1")[-1]

    def test_status_and_fsck(self, console):
        run(console, "write /z zz")
        status = run(console, "status")[-1]
        assert "site 0" in status and "site 2" in status
        assert "CLEAN" in run(console, "fsck")[-1]

    def test_mail_empty(self, console):
        assert run(console, "mail root")[-1] == "(no mail)"


class TestDispatch:
    def test_unknown_command(self, console):
        assert "unknown command" in console.run_command("frobnicate")

    def test_usage_error(self, console):
        assert "usage error" in console.run_command("cat")

    def test_help_lists_commands(self, console):
        out = console.run_command("help")
        assert "partition" in out and "fsck" in out

    def test_quit_returns_none(self, console):
        assert console.run_command("quit") is None
        assert console.run_command("exit") is None

    def test_empty_line(self, console):
        assert console.run_command("") == ""

    def test_bad_quoting(self, console):
        assert "parse error" in console.run_command('write /f "unclosed')
