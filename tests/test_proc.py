"""Remote processes (paper section 3): fork, exec, run, signals, pipes,
shared file descriptors, and cross-machine error handling."""

import pytest

from repro import LocusCluster, Signal
from repro.errors import ECHILD, EPIPE, ESRCH, RemoteProcessError
from repro.net.stats import StatsWindow
from repro.proc.process import pid_origin


@pytest.fixture
def cluster():
    c = LocusCluster(n_sites=3, seed=17)

    def hello(api, *args):
        yield from api.write_file("/out-hello",
                                  f"hello from site {api.site.site_id} "
                                  f"args={args}".encode())
        return 0

    def exit_with(api, code=0):
        yield from api.write_file(f"/out-{api.getpid()}", b"ran")
        return int(code)

    def writer_prog(api, path, payload):
        yield from api.write_file(path, payload)
        return 0

    c.register_program("hello", hello)
    c.register_program("exit_with", exit_with)
    c.register_program("writer", writer_prog)
    return c


@pytest.fixture
def sh(cluster):
    return cluster.shell(0)


class TestForkWait:
    def test_local_fork_runs_child_main(self, cluster, sh):
        seen = []

        def child(api):
            seen.append(api.getpid())
            return 7
            yield  # pragma: no cover

        pid = sh.fork(child)
        result = sh.wait()
        assert result == (pid, 7)
        assert seen == [pid]

    def test_remote_fork_places_child_on_dest(self, cluster, sh):
        where = []

        def child(api):
            where.append(api.site.site_id)
            return 0
            yield  # pragma: no cover

        pid = sh.fork(child, dest=2)
        assert pid_origin(pid) == 2
        assert sh.wait() == (pid, 0)
        assert where == [2]

    def test_child_inherits_environment(self, cluster, sh):
        sh.setcopies(3)
        sh.set_hidden_context(["pdp11"])
        env_seen = {}

        def child(api):
            env_seen["copies"] = api.proc.default_copies
            env_seen["ctx"] = list(api.proc.hidden_context)
            env_seen["user"] = api.proc.user
            return 0
            yield  # pragma: no cover

        sh.fork(child, dest=1)
        sh.wait()
        assert env_seen == {"copies": 3, "ctx": ["pdp11"], "user": "root"}

    def test_wait_without_children_raises(self, sh):
        with pytest.raises(ECHILD):
            sh.wait()

    def test_wait_returns_children_in_exit_order(self, cluster, sh):
        def quick(api):
            yield 1.0
            return 1

        def slow(api):
            yield 50.0
            return 2

        slow_pid = sh.fork(slow, dest=1)
        quick_pid = sh.fork(quick, dest=2)
        assert sh.wait() == (quick_pid, 1)
        assert sh.wait() == (slow_pid, 2)

    def test_remote_fork_ships_image_pages(self, cluster, sh):
        win = StatsWindow(cluster.stats)
        sh.fork(None, dest=2)
        snap = win.close()
        page = cluster.config.cost.page_size
        assert snap.bytes_sent.get("proc.create", 0) >= \
            sh.proc.image.data_pages * page


class TestRunAndExec:
    def test_run_loads_program_from_filesystem(self, cluster, sh):
        sh.mkdir("/bin")
        sh.install_program("/bin/hello", "hello")
        pid = sh.run("/bin/hello", args=("a", "b"))
        sh.wait()
        out = sh.read_file("/out-hello")
        assert out == b"hello from site 0 args=('a', 'b')"
        assert pid_origin(pid) == 0

    def test_run_remote_executes_at_dest(self, cluster, sh):
        sh.mkdir("/bin")
        sh.install_program("/bin/hello", "hello")
        pid = sh.run("/bin/hello", dest=2)
        sh.wait()
        assert pid_origin(pid) == 2
        assert sh.read_file("/out-hello") == b"hello from site 2 args=()"

    def test_run_avoids_parent_image_copy(self, cluster, sh):
        """Section 3.1: run avoids the copy of the parent process image."""
        sh.mkdir("/bin")
        sh.install_program("/bin/hello", "hello")
        win = StatsWindow(cluster.stats)
        sh.run("/bin/hello", dest=2)
        sh.wait()
        run_bytes = win.close().bytes_sent.get("proc.run", 0)
        win2 = StatsWindow(cluster.stats)
        sh.fork(None, dest=2)
        fork_bytes = win2.close().bytes_sent.get("proc.create", 0)
        assert run_bytes < fork_bytes / 4

    def test_run_exit_code_via_program_table(self, cluster, sh):
        sh.mkdir("/bin")
        sh.install_program("/bin/exiter", "exit_with")
        pid = sh.run("/bin/exiter", args=(3,), dest=1)
        assert sh.wait() == (pid, 3)

    def test_exec_migrates_process(self, cluster, sh):
        sh.mkdir("/bin")
        sh.install_program("/bin/hello", "hello")
        child_pid = sh.fork(None, dest=0)
        child = cluster.site(0).proc.procs[child_pid]
        from repro.proc.api import ProcApi
        api = ProcApi(cluster.site(0), child)
        cluster.call(0, api.exec("/bin/hello", dest=2))
        cluster.settle()
        # The process moved: a forwarding pointer remains at site 0.
        assert cluster.site(0).proc.forward[child_pid] == 2
        assert sh.read_file("/out-hello") == b"hello from site 2 args=()"


class TestHeterogeneousCpus:
    def test_hidden_directory_selects_per_cpu_load_module(self, cluster):
        """Section 2.4.1: /bin/who as a hidden directory with pdp11 and vax
        entries; each machine type transparently gets its own module."""
        cluster.set_cpu_type(1, "pdp11")
        sh0 = cluster.shell(0)                      # vax
        sh0.setcopies(3)
        sh0.mkdir("/bin")
        sh0.mkdir("/bin/who", hidden=True)
        # Populating a hidden directory requires the escape mechanism that
        # makes hidden directories visible (section 2.4.1 part d).
        sh0.set_hidden_visible(True)
        sh0.install_program("/bin/who/vax", "writer", cpu="vax")
        sh0.install_program("/bin/who/pdp11", "writer", cpu="pdp11")
        sh0.set_hidden_visible(False)
        cluster.settle()
        # Same command name, run at each site, resolves per machine type.
        sh0.run("/bin/who", args=("/who-vax", b"vax ran"), dest=0)
        sh0.wait()
        sh0.run("/bin/who", args=("/who-pdp", b"pdp ran"), dest=1)
        sh0.wait()
        assert sh0.read_file("/who-vax") == b"vax ran"
        assert sh0.read_file("/who-pdp") == b"pdp ran"

    def test_escape_makes_hidden_directory_visible(self, cluster):
        sh0 = cluster.shell(0)
        sh0.mkdir("/bin")
        sh0.mkdir("/bin/who", hidden=True)
        sh0.set_hidden_visible(True)
        sh0.install_program("/bin/who/vax", "writer", cpu="vax")
        assert sh0.readdir("/bin/who") == ["vax"]
        sh0.set_hidden_visible(False)
        # Without the escape, the name resolves through the context: the
        # path continues into the selected load module (a regular file).
        from repro.errors import ENOENT, ENOTDIR
        with pytest.raises((ENOENT, ENOTDIR)):
            sh0.readdir("/bin/who/nonexistent")


class TestSignals:
    def test_signal_local_process(self, cluster, sh):
        def waiter(api):
            sig = yield from api.sigwait()
            return int(sig)

        pid = sh.fork(waiter)
        sh.kill(pid, Signal.SIGTERM)
        assert sh.wait() == (pid, int(Signal.SIGTERM))

    def test_signal_remote_process(self, cluster, sh):
        def waiter(api):
            sig = yield from api.sigwait()
            return int(sig)

        pid = sh.fork(waiter, dest=2)
        sh.kill(pid, Signal.SIGHUP)
        assert sh.wait() == (pid, int(Signal.SIGHUP))

    def test_sigkill_terminates(self, cluster, sh):
        def stubborn(api):
            while True:
                yield 10.0

        pid = sh.fork(stubborn, dest=1)
        sh.kill(pid, Signal.SIGKILL)
        assert sh.wait() == (pid, 137)

    def test_signal_follows_migrated_process(self, cluster, sh):

        def waiter(api):
            sig = yield from api.sigwait()
            return int(sig)

        pid = sh.fork(waiter, dest=1)
        # Manually migrate the waiting process's registration: simulate by
        # signalling through the origin site's forwarding logic.
        sh.kill(pid, Signal.SIGINT)
        assert sh.wait() == (pid, int(Signal.SIGINT))

    def test_kill_unknown_pid_raises(self, sh):
        with pytest.raises(ESRCH):
            sh.kill(999_999_999)


class TestErrorHandling:
    def test_parent_notified_when_child_site_fails(self, cluster, sh):
        def forever(api):
            while True:
                yield 10.0

        pid = sh.fork(forever, dest=2)
        cluster.fail_site(2)
        with pytest.raises(RemoteProcessError):
            sh.wait()
        # Additional information was deposited in the process structure and
        # is interrogated via the new system call (section 3.3).
        info = sh.errinfo()
        assert any(i["kind"] == "child_site_failed" and i["pid"] == pid
                   for i in info)
        assert Signal.SIGCHLD_ERR in sh.proc.pending_signals

    def test_child_notified_when_parent_site_fails(self, cluster, sh):
        states = {}

        def child(api):
            sig = yield from api.sigwait()
            states["sig"] = sig
            states["info"] = api.errinfo()
            return 0

        sh.fork(child, dest=2)
        cluster.fail_site(0)
        cluster.settle()
        assert states["sig"] == Signal.SIGPAR_ERR
        assert states["info"][0]["kind"] == "parent_site_failed"


class TestPipes:
    def test_anonymous_pipe_same_site(self, cluster, sh):
        r, w = sh.pipe()
        sh.write(w, b"through the pipe")
        assert sh.read(r, 100) == b"through the pipe"
        sh.close(w)
        assert sh.read(r, 10) == b""      # EOF after writer closes
        sh.close(r)

    def test_pipe_blocks_reader_until_data(self, cluster, sh):
        r, w = sh.pipe()
        got = []

        def reader(api, rfd):
            data = yield from api.read(rfd, 10)
            got.append(data)
            return 0

        sh.fork(reader, args=(r,), dest=2)   # reader across the network
        sh.write(w, b"wakeup")
        sh.wait()
        assert got == [b"wakeup"]

    def test_write_to_pipe_without_readers_raises_epipe(self, cluster, sh):
        r, w = sh.pipe()
        sh.close(r)
        with pytest.raises(EPIPE):
            sh.write(w, b"nobody listening")

    def test_named_pipe_across_sites(self, cluster, sh):
        sh.mkfifo("/fifo")
        results = []

        def consumer(api, path):
            fd = yield from api.open(path, "r")
            data = yield from api.read(fd, 100)
            results.append(data)
            yield from api.close(fd)
            return 0

        def producer(api, path):
            fd = yield from api.open(path, "w")
            yield from api.write(fd, b"fifo payload")
            yield from api.close(fd)
            return 0

        sh.fork(consumer, args=("/fifo",), dest=1)
        sh.fork(producer, args=("/fifo",), dest=2)
        sh.wait()
        sh.wait()
        assert results == [b"fifo payload"]

    def test_pipe_capacity_blocks_writer(self, cluster, sh):
        from repro.proc.pipes import PIPE_CAPACITY
        r, w = sh.pipe()
        progress = []

        def producer(api, wfd):
            n = yield from api.write(wfd, b"x" * (PIPE_CAPACITY + 100))
            progress.append(n)
            return 0

        sh.fork(producer, args=(w,), dest=1)
        cluster.settle()
        assert progress == []            # blocked: buffer full
        drained = sh.read(r, PIPE_CAPACITY + 100)
        cluster.settle()
        assert progress == [PIPE_CAPACITY + 100]
        rest = sh.read(r, PIPE_CAPACITY)
        assert len(drained) + len(rest) == PIPE_CAPACITY + 100


class TestSharedDescriptors:
    def test_offset_shared_between_parent_and_remote_child(self, cluster,
                                                           sh):
        """Section 3.2: if one process sharing an open file reads a
        character and then another does so, the second receives the
        character following the one touched by the first."""
        sh.write_file("/stream", b"abcdefghij")
        fd = sh.open("/stream")
        assert sh.read(fd, 3) == b"abc"
        got = []

        def child(api, cfd):
            data = yield from api.read(cfd, 3)
            got.append(data)
            return 0

        sh.fork(child, args=(fd,), dest=2)
        sh.wait()
        assert got == [b"def"]           # continued after the parent
        assert sh.read(fd, 3) == b"ghi"  # token moved back, offset intact

    def test_token_messages_on_alternating_access(self, cluster, sh):
        sh.write_file("/pingpong", b"z" * 64)
        fd = sh.open("/pingpong")
        sh.read(fd, 4)

        def toucher(api, cfd):
            yield from api.read(cfd, 4)
            return 0

        win = StatsWindow(cluster.stats)
        sh.fork(toucher, args=(fd,), dest=1)
        sh.wait()
        sh.read(fd, 4)
        snap = win.close()
        # The child's grab crosses the wire; the token comes home with the
        # dying child's surrender message (the manager-side re-grant is a
        # local procedure call).
        assert snap.sent.get("proc.token_get", 0) >= 1
        assert snap.sent.get("proc.token_surrender", 0) >= 1

    def test_shared_write_descriptor_appends_in_order(self, cluster, sh):
        fd = sh.open("/log", "w", create=True)
        sh.write(fd, b"parent|")

        def applog(api, wfd, text):
            yield from api.write(wfd, text)
            return 0

        sh.fork(applog, args=(fd, b"child@2|"), dest=2)
        sh.wait()
        sh.write(fd, b"parent again")
        sh.close(fd)
        assert sh.read_file("/log") == b"parent|child@2|parent again"
