"""Supervised remote operations: timeouts, bounded retry, replica failover.

The supervision layer (``cost.supervise_remote_ops``, default on) gives
idempotent remote calls a per-op timeout backstop and deterministic
exponential backoff, and lets the US read path substitute another pack
copy mid-call when its storage site dies (section 5.2 principle 3).
Write/commit paths never blind-retry — they abort the shadow, exactly as
before.  With the flag off every path degenerates to the paper's
unsupervised calls.
"""

import pytest

from repro import LocusCluster, Mode
from repro.config import CostModel
from repro.errors import EBUSY, LocusError, NetworkError
from repro.faults import FaultPlan
from repro.fs.types import ROOT_GFS
from repro.tools import fsck


def _handler(calls, slow_first=0.0):
    def fn(src, payload):
        calls.append(src)
        if slow_first and len(calls) == 1:
            yield slow_first
        return "pong"
        yield   # pragma: no cover
    return fn


class TestSupervisedRpc:
    def test_retries_through_a_dropped_request(self):
        cluster = LocusCluster(n_sites=2, seed=71)
        calls = []
        cluster.sites[1].register_handler("t.ping", _handler(calls))
        cluster.inject(FaultPlan(seed=71).drop("t.ping", count=1))
        result = cluster.call(
            0, cluster.sites[0].supervised_rpc(1, "t.ping"))
        assert result == "pong"
        assert len(calls) == 1          # request dropped, retry arrived

    def test_timeout_is_retried_as_a_network_failure(self):
        cluster = LocusCluster(n_sites=2, seed=72)
        calls = []
        # First call sleeps far beyond cost.rpc_timeout; the timeout
        # surfaces as a NetworkError and the retry completes fast.
        cluster.sites[1].register_handler(
            "t.slow", _handler(calls, slow_first=50_000.0))
        result = cluster.call(
            0, cluster.sites[0].supervised_rpc(1, "t.slow"))
        assert result == "pong"
        assert len(calls) == 2

    def test_non_idempotent_calls_never_blind_retry(self):
        cluster = LocusCluster(n_sites=2, seed=73)
        calls = []
        cluster.sites[1].register_handler("t.once", _handler(calls))
        cluster.inject(FaultPlan(seed=73).drop("t.once", count=1))
        with pytest.raises(NetworkError):
            cluster.call(0, cluster.sites[0].supervised_rpc(
                1, "t.once", idempotent=False))
        assert calls == []              # the one request was lost; no retry

    def test_flag_off_is_the_papers_unsupervised_call(self):
        cost = CostModel().with_overrides(supervise_remote_ops=False)
        cluster = LocusCluster(n_sites=2, seed=74, cost=cost)
        calls = []
        cluster.sites[1].register_handler("t.ping", _handler(calls))
        cluster.inject(FaultPlan(seed=74).drop("t.ping", count=1))
        with pytest.raises(NetworkError):
            cluster.call(0, cluster.sites[0].supervised_rpc(1, "t.ping"))
        assert calls == []

    def test_callable_dst_is_reresolved_each_attempt(self):
        """A retry chases responsibility that moved during the failure
        (e.g. a CSS re-elected while the call was failing)."""
        cluster = LocusCluster(n_sites=3, seed=75)
        calls = []
        cluster.sites[2].register_handler("t.ping", _handler(calls))
        cluster.fail_site(1)
        resolutions = []

        def resolve():
            resolutions.append(1)
            return 1 if len(resolutions) == 1 else 2

        result = cluster.call(
            0, cluster.sites[0].supervised_rpc(resolve, "t.ping"))
        assert result == "pong"
        assert len(resolutions) == 2    # first aimed at the dead site
        assert calls == [0]


class TestReadFailover:
    CONTENT = bytes(range(256)) * 24            # 6 pages

    def _replicated(self, seed=51, **flags):
        cost = CostModel().with_overrides(**flags) if flags else None
        cluster = LocusCluster(n_sites=3, seed=seed,
                               root_pack_sites=[1, 2], cost=cost)
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        sh0.write_file("/hot", self.CONTENT)
        cluster.settle()
        ino = sh0.stat("/hot")["ino"]
        return cluster, (ROOT_GFS, ino)

    def test_read_survives_ss_crash_mid_call(self):
        cluster, gfile = self._replicated()
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.READ))
        ss = handle.ss_site
        task = cluster.spawn(0, fs0.read(handle, 0, len(self.CONTENT)))
        cluster.sim.run(until=cluster.sim.now + 30.0)
        assert not task.finished        # the read is underway
        cluster.fail_site(ss)
        cluster.settle()
        assert task.finished
        assert task.result() == self.CONTENT
        # The handle was substituted onto the surviving copy.
        assert handle.ss_site != ss and cluster.site(handle.ss_site).up
        cluster.call(0, fs0.close(handle))
        cluster.restart_site(ss)
        cluster.settle()
        assert fsck(cluster).clean

    def test_unsupervised_read_fails_where_supervised_survives(self):
        cluster, gfile = self._replicated(
            seed=51, supervise_remote_ops=False)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.READ))
        ss = handle.ss_site
        task = cluster.spawn(0, fs0.read(handle, 0, len(self.CONTENT)))
        cluster.sim.run(until=cluster.sim.now + 30.0)
        assert not task.finished
        cluster.fail_site(ss)
        cluster.settle()
        assert task.finished
        with pytest.raises(NetworkError):
            task.result()

    def test_whole_syscall_rides_through_dropped_css_open(self):
        cluster, gfile = self._replicated(seed=52)
        inj = cluster.inject(
            FaultPlan(seed=52).drop("fs.css_open", count=1))
        assert cluster.shell(0).read_file("/hot") == self.CONTENT
        assert [d for __, k, d in inj.trace
                if k == "dropped"] == ["fs.css_open"]

    def test_write_handle_never_blind_retries(self):
        """An SS crash under an open-for-write marks the descriptor in
        error and aborts the shadow (the paper's failure-action table);
        supervision alone must not change that.  (With
        ``exactly_once_writes`` — on by default — the handle instead
        re-homes to a surviving replica; see tests/test_exactly_once.py.)"""
        cluster, gfile = self._replicated(seed=53, exactly_once_writes=False)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"Z" * 2048))
        cluster.fail_site(handle.ss_site)
        cluster.settle()
        assert handle.closed
        assert "lost" in handle.attrs.get("error", "")
        # The partial write died with the shadow: every copy still serves
        # the old content.
        assert cluster.shell(0).read_file("/hot") == self.CONTENT


class TestReopenElsewhere:
    """Reconfiguration cleanup's reader reopen (section 5.6's failure
    action for 'remote file in use locally (read)')."""

    def _open_reader(self, cluster, path="/f"):
        sh0 = cluster.shell(0)
        fs0 = cluster.site(0).fs
        ino = sh0.stat(path)["ino"]
        handle = cluster.call(
            0, fs0.open_gfile((ROOT_GFS, ino), Mode.READ))
        return fs0, handle

    def test_reader_survives_partition_via_reopen(self):
        cluster = LocusCluster(n_sites=3, seed=81, root_pack_sites=[1, 2])
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        sh0.write_file("/f", b"resilient" * 300)
        cluster.settle()
        fs0, handle = self._open_reader(cluster)
        ss = handle.ss_site
        other = 3 - ss                  # the surviving pack copy
        cluster.partition({0, other}, {ss})
        assert not handle.closed
        assert handle.ss_site == other
        data = cluster.call(0, fs0.read(handle, 0, 9 * 300))
        assert data == b"resilient" * 300
        cluster.call(0, fs0.close(handle))

    def test_reader_errors_when_no_copy_remains(self):
        cluster = LocusCluster(n_sites=2, seed=82, root_pack_sites=[1])
        sh0 = cluster.shell(0)
        sh0.write_file("/f", b"solo")
        cluster.settle()
        fs0, handle = self._open_reader(cluster)
        cluster.partition({0}, {1})
        assert handle.closed
        assert handle.attrs["error"] == "no surviving copy reachable"
        assert handle.hid not in fs0.us

    def test_reader_refuses_stale_copy(self):
        """A surviving copy older than the open version must not be
        silently substituted — time never runs backwards for a reader."""
        cluster = LocusCluster(n_sites=3, seed=83, root_pack_sites=[1, 2])
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        sh0.write_file("/f", b"generation 1")
        cluster.settle()                # both copies at v1
        cluster.fail_site(2)
        sh0.write_file("/f", b"generation 2")
        cluster.settle()                # v2 on site 1 only
        fs0, handle = self._open_reader(cluster)
        assert handle.ss_site == 1
        # Site 2 returns, stale; site 1 (the only v2 copy) dies before
        # propagation can catch 2 up.
        cluster.restart_site(2, settle=False, merge=False)
        cluster.fail_site(1, settle=False)
        cluster.settle()
        assert handle.closed
        assert handle.attrs["error"] == "remaining copies are stale"


class TestDeadlineFlush:
    """Adaptive flush sizing (cost.write_flush_deadline): a partial
    write-behind batch ships once the deadline passes instead of waiting
    for a full batch or the commit."""

    def _cluster(self, deadline=50.0):
        cost = CostModel().with_overrides(
            batch_writes=True, batch_pages=8,
            write_flush_deadline=deadline)
        cluster = LocusCluster(n_sites=2, seed=91, root_pack_sites=[1],
                               cost=cost)
        sh0 = cluster.shell(0)
        sh0.write_file("/w", b"seed")
        cluster.settle()
        ino = sh0.stat("/w")["ino"]
        return cluster, (ROOT_GFS, ino)

    def test_partial_batch_ships_at_the_deadline(self):
        cluster, gfile = self._cluster(deadline=50.0)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"A" * 1024))   # 1 of 8 pages
        so = cluster.site(1).fs.ss[gfile]
        assert handle.pending_writes and so.pages_received == 0
        assert handle.flush_timer is not None
        cluster.sim.run(until=cluster.sim.now + 200.0)
        assert not handle.pending_writes
        assert so.pages_received == 1       # shipped without close/commit
        cluster.call(0, fs0.commit(handle))
        cluster.call(0, fs0.close(handle))
        cluster.settle()
        assert cluster.shell(0).read_file("/w")[:8] == b"AAAAAAAA"

    def test_commit_before_deadline_cancels_the_timer(self):
        cluster, gfile = self._cluster(deadline=5_000.0)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"B" * 1024))
        assert handle.flush_timer is not None
        cluster.call(0, fs0.commit(handle))
        assert handle.flush_timer is None
        cluster.call(0, fs0.close(handle))
        cluster.sim.run(until=cluster.sim.now + 10_000.0)
        cluster.settle()                    # a late timer would misfire here
        assert cluster.shell(0).read_file("/w")[:8] == b"BBBBBBBB"

    def test_deadline_zero_keeps_batches_whole(self):
        cluster, gfile = self._cluster(deadline=0.0)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"C" * 1024))
        assert handle.flush_timer is None   # feature off: no timer armed
        cluster.sim.run(until=cluster.sim.now + 1_000.0)
        assert handle.pending_writes        # still staged at the US
        cluster.call(0, fs0.close(handle))
        cluster.settle()
        assert cluster.shell(0).read_file("/w")[:8] == b"CCCCCCCC"
