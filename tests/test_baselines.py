"""The baselines must themselves be correct before benchmarks compare
against them."""

import pytest

from repro import LocusCluster
from repro.baselines.layered import LayeredTransferService
from repro.baselines.unixfs import UnixFs
from repro.errors import EBADF, EEXIST, EISDIR, ENOENT
from repro.sim import Simulator


@pytest.fixture
def ufs():
    return UnixFs(Simulator(seed=5))


class TestUnixFs:
    def test_roundtrip(self, ufs):
        sim = ufs.sim
        sim.run_task(ufs.write_file("/f", b"unix data"))
        assert sim.run_task(ufs.read_file("/f")) == b"unix data"

    def test_directories(self, ufs):
        sim = ufs.sim
        sim.run_task(ufs.mkdir("/d"))
        sim.run_task(ufs.write_file("/d/a", b"1"))
        sim.run_task(ufs.write_file("/d/b", b"2"))
        assert sim.run_task(ufs.readdir("/d")) == ["a", "b"]

    def test_unlink(self, ufs):
        sim = ufs.sim
        sim.run_task(ufs.write_file("/gone", b"x"))
        sim.run_task(ufs.unlink("/gone"))
        with pytest.raises(ENOENT):
            sim.run_task(ufs.read_file("/gone"))

    def test_multi_page(self, ufs):
        sim = ufs.sim
        data = bytes(i % 256 for i in range(3000))
        sim.run_task(ufs.write_file("/big", data))
        assert sim.run_task(ufs.read_file("/big")) == data

    def test_shadow_commit_on_close(self, ufs):
        sim = ufs.sim
        fd = sim.run_task(ufs.open("/c", "w", create=True))
        sim.run_task(ufs.write(fd, b"staged"))
        # Uncommitted: disk inode untouched.
        ino = ufs._handle(fd).ino
        assert ufs.pack.get_inode(ino).size == 0
        sim.run_task(ufs.close(fd))
        assert ufs.pack.get_inode(ino).size == 6

    def test_errors(self, ufs):
        sim = ufs.sim
        with pytest.raises(ENOENT):
            sim.run_task(ufs.open("/missing"))
        sim.run_task(ufs.mkdir("/d"))
        with pytest.raises(EEXIST):
            sim.run_task(ufs.mkdir("/d"))
        with pytest.raises(EISDIR):
            sim.run_task(ufs.open("/d", "w", create=True))
        with pytest.raises(EBADF):
            sim.run_task(ufs.read(999, 1))

    def test_stat_and_costs_accumulate(self, ufs):
        sim = ufs.sim
        sim.run_task(ufs.write_file("/s", b"abc"))
        assert sim.run_task(ufs.stat("/s"))["size"] == 3
        assert ufs.cpu_used > 0
        assert sim.now > 0


class TestLayeredBaseline:
    @pytest.fixture
    def setup(self):
        cluster = LocusCluster(n_sites=2, seed=9)
        service = LayeredTransferService(cluster)
        sh1 = cluster.shell(1)
        sh1.write_file("/remote", b"payload " * 300)
        cluster.settle()
        gfile = (0, sh1.stat("/remote")["ino"])
        return cluster, service, gfile

    def test_fetch_whole_file(self, setup):
        cluster, service, gfile = setup
        data = cluster.call(0, service.fetch_file(0, 1, gfile))
        assert data == b"payload " * 300
        assert service.stats.files_fetched == 1
        assert service.stats.pages_transferred >= 3

    def test_fetch_missing_raises(self, setup):
        cluster, service, __ = setup
        with pytest.raises(ENOENT):
            cluster.call(0, service.fetch_file(0, 1, (0, 999999)))

    def test_writeback(self, setup):
        cluster, service, gfile = setup
        new = b"rewritten" * 100
        cluster.call(0, service.writeback_file(0, 1, gfile, new))
        sh1 = cluster.shell(1)
        assert sh1.read_file("/remote")[:len(new)] == new

    def test_layered_fetch_costs_more_than_locus_page_reads(self, setup):
        """The headline comparison: touching one page of a big remote file
        is dramatically cheaper under LOCUS than staging the whole file."""
        cluster, service, gfile = setup
        t0 = cluster.sim.now
        sh0 = cluster.shell(0)
        fd = sh0.open("/remote")
        sh0.pread(fd, 0, 100)
        sh0.close(fd)
        locus_time = cluster.sim.now - t0
        t1 = cluster.sim.now
        cluster.call(0, service.remote_session(0, 1, gfile,
                                               touch_pages=[0]))
        layered_time = cluster.sim.now - t1
        assert layered_time > 3 * locus_time
