"""The unified failure contract: a timeout IS a communication failure.

The paper's model gives the kernel exactly one signal for a lost peer —
the closed virtual circuit (section 5.1).  The simulation adds per-op
timeouts as a supervision backstop, and they must surface through the same
contract: ``SimTimeout`` subclasses ``NetworkError``, so every call site
that handles communication failure handles timeouts for free.

The lint half of this file keeps it that way: no protocol code may catch
``SimTimeout`` separately (history: several reconfiguration paths caught
``(NetworkError, SimTimeout)``, and paths that caught only ``NetworkError``
silently leaked timeouts before the classes were unified).
"""

import pathlib
import re

from repro.errors import (CircuitClosed, LocusError, NetworkError, SimError,
                          SimTimeout, SiteDown, Unreachable)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

# The RPC plumbing itself may name SimTimeout: Site.rpc must clean up its
# pending-reply slot on timeout before re-raising.
LINT_WHITELIST = {"core/site.py"}


class TestHierarchy:
    def test_timeout_is_both_sim_and_network_failure(self):
        assert issubclass(SimTimeout, NetworkError)
        assert issubclass(SimTimeout, SimError)

    def test_one_except_clause_covers_every_comm_failure(self):
        failures = [Unreachable(0, 1), CircuitClosed(1, "cable"),
                    SiteDown(1), SimTimeout("fs.read_page->1")]
        caught = []
        for exc in failures:
            try:
                raise exc
            except NetworkError as err:
                caught.append(type(err))
        assert caught == [type(e) for e in failures]

    def test_everything_is_a_locus_error(self):
        assert issubclass(SimTimeout, LocusError)
        assert issubclass(NetworkError, LocusError)


class TestLint:
    def test_no_except_clause_names_simtimeout(self):
        """Catching (NetworkError, SimTimeout) is redundant; catching
        SimTimeout alone while meaning 'communication failed' is a bug.
        Either way the clause should say NetworkError."""
        pattern = re.compile(r"except\b[^\n]*\bSimTimeout\b")
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            rel = path.relative_to(SRC).as_posix()
            if rel in LINT_WHITELIST:
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if pattern.search(line):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "catch NetworkError instead of SimTimeout:\n" +
            "\n".join(offenders))
