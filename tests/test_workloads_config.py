"""Workload generators and configuration objects."""

import random

import pytest

from repro import ClusterConfig, CostModel, LocusCluster
from repro.errors import EINVAL
from repro.workloads.generators import (build_tree, deterministic_bytes,
                                        read_write_mix, sample_paths,
                                        zipf_weights)


class TestCostModel:
    def test_message_delay_scales_with_bytes(self):
        cost = CostModel()
        assert cost.message_delay(0) < cost.message_delay(10_000)
        assert cost.message_delay(0) == pytest.approx(
            cost.net_latency + cost.msg_header_bytes * cost.net_per_byte)

    def test_with_overrides_copies(self):
        base = CostModel()
        tweaked = base.with_overrides(readahead=False, disk_read=99.0)
        assert tweaked.readahead is False
        assert tweaked.disk_read == 99.0
        assert base.readahead is True          # original untouched
        assert base.disk_read != 99.0

    def test_defaults_calibrated_for_t2(self):
        """The 2x remote-page claim depends on this relation; lock it in."""
        cost = CostModel()
        local = cost.cpu_syscall + cost.disk_read
        remote = local + 4 * cost.cpu_msg
        assert remote / local == pytest.approx(2.0, abs=0.15)


class TestClusterConfig:
    def test_resolved_root_packs_default_all(self):
        config = ClusterConfig(n_sites=4)
        assert config.resolved_root_packs() == [0, 1, 2, 3]

    def test_resolved_root_packs_explicit(self):
        config = ClusterConfig(n_sites=4, root_pack_sites=[1, 3])
        assert config.resolved_root_packs() == [1, 3]

    def test_out_of_range_pack_sites_rejected_at_build(self):
        with pytest.raises(EINVAL):
            LocusCluster(config=ClusterConfig(n_sites=2,
                                              root_pack_sites=[5]))


class TestGenerators:
    def test_deterministic_bytes_reproducible(self):
        a = deterministic_bytes(random.Random(3), 100)
        b = deterministic_bytes(random.Random(3), 100)
        assert a == b and len(a) == 100

    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(10)
        assert all(x > y for x, y in zip(weights, weights[1:]))

    def test_sample_paths_favours_head(self):
        rng = random.Random(5)
        paths = [f"/p{i}" for i in range(20)]
        draws = sample_paths(rng, paths, 500)
        assert draws.count("/p0") > draws.count("/p19")

    def test_build_tree_creates_everything(self):
        cluster = LocusCluster(n_sites=2, seed=9)
        sh = cluster.shell(0)
        paths = build_tree(sh, n_dirs=2, files_per_dir=3, file_size=64)
        assert len(paths) == 6
        for path in paths:
            assert sh.stat(path)["size"] == 64

    def test_read_write_mix_counts(self):
        cluster = LocusCluster(n_sites=2, seed=9)
        sh = cluster.shell(0)
        paths = build_tree(sh, n_dirs=1, files_per_dir=4, file_size=64)
        counts = read_write_mix(sh, paths, ops=40, write_frac=0.5,
                                rng=random.Random(1))
        assert counts["reads"] + counts["writes"] == 40
        assert counts["writes"] > 5     # the mix really mixes
