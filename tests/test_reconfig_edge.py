"""Reconfiguration edge cases: watchdogs, arbitration, repeated churn
(paper sections 5.4, 5.5, 5.7)."""

import pytest

from repro import LocusCluster


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=5, seed=101)


class TestProtocolRobustness:
    def test_active_partition_site_dies_midway(self, cluster):
        """Section 5.7: passive sites periodically check the active site
        and restart the protocol if it died."""
        # Break {4} off; while sites converge, kill the lowest survivor
        # (the likely active site) before protocols settle.
        cluster.net.set_partitions([{0, 1, 2, 3}, {4}])
        cluster.sim.run(until=cluster.sim.now + 2.0)   # protocols starting
        cluster.site(0).crash()
        cluster.settle(max_time=5000)
        for s in (1, 2, 3):
            assert cluster.site(s).topology.partition_set == {1, 2, 3}, \
                cluster.site(s).topology.partition_set

    def test_merge_initiator_dies_midway(self, cluster):
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.net.heal()
        cluster.site(4).topology.request_merge()
        cluster.sim.run(until=cluster.sim.now + 2.0)
        cluster.site(4).crash()
        cluster.settle(max_time=5000)
        # The network did not wedge; someone can still merge the rest.
        cluster.site(0).topology.request_merge()
        cluster.settle()
        for s in (0, 1, 2, 3):
            assert cluster.site(s).topology.partition_set == {0, 1, 2, 3}

    def test_simultaneous_merge_from_every_site(self, cluster):
        cluster.partition({0}, {1}, {2}, {3}, {4})
        cluster.net.heal()
        for s in range(5):
            cluster.site(s).topology.request_merge()
        cluster.settle()
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))

    def test_rapid_partition_heal_cycles(self, cluster):
        for round_no in range(4):
            cluster.partition({0, 1, 2}, {3, 4})
            cluster.heal()
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))

    def test_partition_during_merge(self, cluster):
        """A new failure while merging: the system converges to the real
        physical topology, not a stale announcement."""
        cluster.partition({0, 1, 2}, {3, 4})
        cluster.net.heal()
        cluster.site(0).topology.request_merge()
        cluster.sim.run(until=cluster.sim.now + 3.0)
        cluster.net.set_partitions([{0, 1, 2, 3}, {4}])   # break again
        cluster.settle(max_time=20000)
        # Whatever interleaving happened, no partition set contains 4
        # alongside the others once things settle.
        for s in (0, 1, 2, 3):
            pset = cluster.site(s).topology.partition_set
            assert 4 not in pset or pset == {4}

    def test_filesystem_works_after_every_epoch(self, cluster):
        sh = cluster.shell(0)
        sh.setcopies(5)
        sh.write_file("/epochs", b"e0")
        cluster.settle()
        for round_no in range(3):
            cluster.partition({0, 1}, {2, 3, 4})
            sh.write_file("/epochs", f"left e{round_no}".encode())
            cluster.heal()
            cluster.settle()
            assert cluster.shell(4).read_file("/epochs") == \
                f"left e{round_no}".encode()


class TestCssFallback:
    def test_css_without_local_pack(self):
        """A partition whose only members hold no pack of a filegroup still
        elects a CSS (the CSS need not store anything, section 2.3.1);
        operations fail with unavailability, not crashes."""
        cluster = LocusCluster(n_sites=4, seed=102, root_pack_sites=[0, 1])
        sh3 = cluster.shell(3)
        cluster.partition({0, 1}, {2, 3})
        assert cluster.site(3).fs.mount.css_for(0) in (2, 3)
        from repro.errors import FsError, NetworkError
        with pytest.raises((FsError, NetworkError)):
            sh3.read_file("/anything")
        cluster.heal()
        # Service restored after merge.
        sh0 = cluster.shell(0)
        sh0.write_file("/back", b"alive")
        assert sh3.read_file("/back") == b"alive"


class TestEpochMonotonicity:
    def test_epochs_never_regress(self, cluster):
        seen = {s: [cluster.site(s).topology.epoch] for s in range(5)}
        for __ in range(3):
            cluster.partition({0, 1, 2}, {3, 4})
            for s in range(5):
                seen[s].append(cluster.site(s).topology.epoch)
            cluster.heal()
            for s in range(5):
                seen[s].append(cluster.site(s).topology.epoch)
        for s, history in seen.items():
            assert history == sorted(history), f"site {s}: {history}"
            assert history[-1] > history[0]
