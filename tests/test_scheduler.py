"""Execution-site scheduling policies (sections 3.1 / 6)."""

import pytest

from repro import LocusCluster
from repro.errors import EINVAL


@pytest.fixture
def cluster():
    c = LocusCluster(n_sites=4, seed=171)

    def idle(api):
        yield 1000.0
        return 0

    c.register_program("idle", idle)
    return c


class TestPolicies:
    def test_local_policy_empty_advice(self, cluster):
        assert cluster.scheduler.advice("local") == []

    def test_round_robin_rotates(self, cluster):
        first = cluster.scheduler.advice("round_robin")[0]
        second = cluster.scheduler.advice("round_robin")[0]
        assert first != second

    def test_least_loaded_prefers_idle_sites(self, cluster):
        sh = cluster.shell(0)
        for __ in range(3):
            sh.fork(lambda api: (yield 500.0), dest=1)
        order = cluster.scheduler.advice("least_loaded")
        assert order.index(1) > order.index(2)
        assert order.index(1) > order.index(3)

    def test_down_sites_excluded(self, cluster):
        cluster.fail_site(2)
        assert 2 not in cluster.scheduler.advice("least_loaded")
        assert 2 not in cluster.scheduler.advice("round_robin")

    def test_cpu_filter_for_heterogeneous_nets(self, cluster):
        cluster.set_cpu_type(1, "pdp11")
        cluster.set_cpu_type(3, "pdp11")
        pdp_sites = cluster.scheduler.advice("least_loaded", cpu="pdp11")
        assert set(pdp_sites) == {1, 3}

    def test_unknown_policy_rejected(self, cluster):
        with pytest.raises(EINVAL):
            cluster.scheduler.advice("wishful_thinking")

    def test_custom_policy(self, cluster):
        cluster.scheduler.register_policy(
            "reverse", lambda sched: sorted(
                (s.site_id for s in cluster.sites if s.up), reverse=True))
        assert cluster.scheduler.advice("reverse")[0] == 3


class TestPlacement:
    def test_place_sets_advice_and_fork_follows(self, cluster):
        sh = cluster.shell(0)
        where = []

        def child(api):
            where.append(api.site.site_id)
            return 0
            yield  # pragma: no cover

        # Load up sites 0-2 so the balancer points at 3.
        busy = cluster.shell(1)
        for dest in (0, 1, 2):
            busy.fork(lambda api: (yield 800.0), dest=dest)
        sites = cluster.scheduler.place(sh, "least_loaded")
        assert sites[0] == 3
        sh.fork(child)            # advice decides, no explicit dest
        sh.wait()
        assert where == [3]

    def test_balanced_fanout_touches_all_sites(self, cluster):
        sh = cluster.shell(0)
        placements = []

        def worker(api):
            placements.append(api.site.site_id)
            yield 400.0
            return 0

        for __ in range(8):
            cluster.scheduler.place(sh, "least_loaded")
            sh.fork(worker)
        for __ in range(8):
            sh.wait()
        assert set(placements) == {0, 1, 2, 3}