"""Exactly-once mutating syscalls: idempotency ledger, duplicate
suppression, and write-path failover.

The supervision layer retries stalled calls (section 5.6's network error
handling), which makes delivery at-least-once.  For mutating operations
— commit, create, open/close bookkeeping — the executing site keeps a
per-client idempotency ledger so a duplicate request *replays* the
memoized reply instead of re-executing.  The durable flavour lives on
the Pack (the disk model), so replies for ``fs.commit`` and
``fs.create_file`` survive an SS crash exactly like committed blocks do.

These tests pin the ledger unit semantics, the duplicate paths end to
end (lost reply, crash + restart, piggybacked ack eviction), the
late-reply discard in ``supervised_rpc``, the write-path failover that
re-homes an open-for-write to a surviving replica, and the conflict
window retired by ``EWOULDCONFLICT``.
"""

from __future__ import annotations

import pytest

from repro import LocusCluster, Mode
from repro.config import CostModel
from repro.errors import EBADF, NetworkError
from repro.fs.ledger import IdempotencyLedger
from repro.fs.types import ROOT_GFS
from repro.net.message import MsgKind
from repro.tools import fsck


# ---------------------------------------------------------------------------
# Ledger unit semantics.
# ---------------------------------------------------------------------------

class TestIdempotencyLedger:
    def test_duplicate_replays_memoized_reply(self):
        led = IdempotencyLedger(window=4)
        assert led.begin(1, 0) == ("new", None)
        led.commit(1, 0, "reply")
        assert led.begin(1, 0) == ("done", "reply")
        assert led.replays == 1

    def test_abort_lets_the_retry_re_execute(self):
        led = IdempotencyLedger(window=4)
        assert led.begin(1, 0) == ("new", None)
        led.abort(1, 0)
        assert led.begin(1, 0) == ("new", None)

    def test_inflight_duplicate_waits_not_races(self):
        led = IdempotencyLedger(window=4)
        led.begin(1, 0)
        fut = object()
        led.set_running(1, 0, fut)
        state, waiter = led.begin(1, 0)
        assert state == "running" and waiter is fut

    def test_entries_survive_until_client_acks(self):
        """Eviction is ack-driven: an un-acked entry stays (its reply may
        still be retried); ``ack`` retires everything at or below it."""
        led = IdempotencyLedger(window=8)
        for seq in range(4):
            led.begin(1, seq)
            led.commit(1, seq, f"r{seq}")
        assert sorted(led.entries()) == [(1, s) for s in range(4)]
        led.ack(1, 2)
        assert sorted(led.entries()) == [(1, 3)]
        assert led.begin(1, 3) == ("done", "r3")
        assert led.evictions == 3

    def test_window_cap_is_an_oldest_first_backstop(self):
        led = IdempotencyLedger(window=3)
        for seq in range(5):
            led.begin(7, seq)
            led.commit(7, seq, seq)
        assert sorted(led.entries()) == [(7, 2), (7, 3), (7, 4)]
        assert led.evictions == 2

    def test_ack_never_moves_backwards(self):
        led = IdempotencyLedger(window=8)
        led.ack(1, 5)
        led.ack(1, 3)               # stale ack, ignored
        led.begin(1, 6)
        led.commit(1, 6, "kept")
        assert led.begin(1, 6) == ("done", "kept")

    def test_reset_running_drops_only_inflight_markers(self):
        led = IdempotencyLedger(window=8)
        led.begin(1, 0)
        led.commit(1, 0, "durable")
        led.begin(1, 1)
        led.set_running(1, 1, object())
        led.reset_running()
        assert led.begin(1, 0) == ("done", "durable")
        assert led.begin(1, 1) == ("new", None)     # crash killed the run


# ---------------------------------------------------------------------------
# Wire-format parity: header slots must not perturb virtual time.
# ---------------------------------------------------------------------------

def test_stamp_header_slots_are_wire_size_free():
    from repro.net.message import payload_size
    bare = {"gfile": (0, 3), "pages_sent": 2}
    stamped = dict(bare, _stamp=(0, 11), _ack=9)
    assert payload_size(stamped) == payload_size(bare)


# ---------------------------------------------------------------------------
# supervised_rpc: a late reply from a timed-out attempt is discarded.
# ---------------------------------------------------------------------------

class TestLateReplyDiscard:
    def test_late_original_reply_is_discarded_by_attempt_tag(self):
        cluster = LocusCluster(n_sites=2, seed=61)
        calls = []

        def handler(src, payload):
            calls.append(src)
            if len(calls) == 1:
                yield 1000.0        # beyond rpc_timeout; reply arrives late
            return "pong"
            yield                   # pragma: no cover

        cluster.sites[1].register_handler("t.slow", handler)
        result = cluster.call(0, cluster.sites[0].supervised_rpc(1, "t.slow"))
        assert result == "pong"
        assert len(calls) == 2      # timeout + retry both executed
        # Run past the slow attempt's completion: its reply lands on a
        # request id nobody is waiting for and must be dropped, not
        # crash or re-resolve the already-returned call.
        cluster.sim.run(until=cluster.sim.now + 2000.0)
        discarded = cluster.sites[0].metrics.counters[
            "rpc.late_replies_discarded"]
        assert discarded >= 1


# ---------------------------------------------------------------------------
# End-to-end duplicate suppression on the commit path.
# ---------------------------------------------------------------------------

def _drop_next_response(net, mtype):
    """Lose the next ``mtype`` *reply*, closing the circuit: the operation
    applied remotely but the caller cannot know — the ambiguous case the
    ledger exists for."""
    orig_send = net.send
    state = {"dropped": 0}

    def send(src, dst, msg):
        if (msg.mtype == mtype and msg.kind is MsgKind.RESPONSE
                and not state["dropped"]):
            state["dropped"] += 1
            net.stats.record_send(msg.stat_key(), msg.size)
            net.stats.dropped += 1
            net._close_circuit(frozenset((src, dst)), "message lost")
            return
        orig_send(src, dst, msg)

    net.send = send
    return state


def _write_cluster(seed=31, root_pack_sites=(1,), n_sites=2):
    cluster = LocusCluster(n_sites=n_sites, seed=seed,
                           root_pack_sites=list(root_pack_sites))
    sh0 = cluster.shell(0)
    if len(root_pack_sites) > 1:
        sh0.setcopies(len(root_pack_sites))
    sh0.write_file("/w", b"seed" * 64)
    cluster.settle()
    ino = sh0.stat("/w")["ino"]
    return cluster, (ROOT_GFS, ino)


class TestCommitReplay:
    def test_lost_commit_reply_replays_not_reapplies(self):
        """The commit applies, the reply is lost, the supervised retry
        arrives with the same stamp: the SS answers from the ledger and
        the version vector moves exactly once."""
        cluster, gfile = _write_cluster()
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        v_before = handle.attrs["version"]
        cluster.call(0, fs0.write(handle, 0, b"X" * 1024))
        state = _drop_next_response(cluster.net, "fs.commit")
        cluster.call(0, fs0.commit(handle))
        cluster.call(0, fs0.close(handle))
        cluster.settle()
        assert state["dropped"] == 1, "fault never fired"
        pack = cluster.site(1).packs[ROOT_GFS]
        assert pack.ledger is not None and pack.ledger.replays >= 1
        stamped = [k for k in pack.applied_ops if k[0] == 0]
        assert stamped and all(pack.applied_ops[k] == 1 for k in stamped)
        # Exactly one version bump despite two deliveries.
        assert pack.inodes[gfile[1]].version == v_before.bump(1)
        assert cluster.shell(0).read_file("/w")[:8] == b"XXXXXXXX"
        assert fsck(cluster).clean

    def test_ledger_survives_ss_crash_and_restart(self):
        """The durable flavour: a duplicate arriving after the SS rebooted
        still replays — the memoized reply lives on the pack, not in
        volatile open state."""
        cluster, gfile = _write_cluster(seed=32)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"Y" * 512))
        cluster.call(0, fs0.commit(handle))
        cluster.call(0, fs0.close(handle))
        cluster.settle()
        pack = cluster.site(1).packs[ROOT_GFS]
        # Client 0 stamped several mutating ops during setup (creates and
        # commits); the highest sequence is the commit just issued.
        stamp = max((k for k in pack.applied_ops if k[0] == 0),
                    key=lambda k: k[1])
        recorded = pack.ledger.begin(*stamp)[1]

        cluster.fail_site(1)
        cluster.restart_site(1)
        fs1 = cluster.site(1).fs

        # Same stamp after reboot: replay, no EBADF, no second apply —
        # even though every SsOpen died with the crash.
        vv = cluster.call(1, fs1.h_commit(0, {"gfile": gfile,
                                              "_stamp": list(stamp)}))
        assert vv == recorded
        assert pack.applied_ops[stamp] == 1
        # A genuinely new op against the closed file still fails.
        with pytest.raises(EBADF):
            cluster.call(1, fs1.h_commit(0, {"gfile": gfile,
                                             "_stamp": [0, 9999]}))

    def test_piggybacked_ack_evicts_retired_entries(self):
        """Every stamped request carries the client's completion floor;
        entries at or below it are garbage collected at the server."""
        cluster, gfile = _write_cluster(seed=33)
        fs0 = cluster.site(0).fs
        fs1 = cluster.site(1).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(
            1, fs1.h_commit(0, {"gfile": gfile, "_stamp": [9, 3]}))
        pack = cluster.site(1).packs[ROOT_GFS]
        assert (9, 3) in list(pack.ledger.entries())
        cluster.call(
            1, fs1.h_commit(0, {"gfile": gfile, "_stamp": [9, 5],
                                "_ack": 3}))
        entries = list(pack.ledger.entries())
        assert (9, 3) not in entries        # acked away
        assert (9, 5) in entries            # still awaiting its ack
        cluster.call(0, fs0.abort(handle))
        cluster.call(0, fs0.close(handle))


# ---------------------------------------------------------------------------
# Write-path failover: an open-for-write re-homes to a surviving replica.
# ---------------------------------------------------------------------------

class TestWriteFailover:
    def test_open_for_write_rehomes_after_ss_crash(self):
        """The SS dies with pages staged but uncommitted: cleanup re-homes
        the descriptor to the other pack copy, the staged pages are
        replayed there, and the commit lands normally."""
        cluster, gfile = _write_cluster(seed=34, root_pack_sites=(1, 2),
                                        n_sites=3)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        first_ss = handle.ss_site
        new = b"F" * 2048
        cluster.call(0, fs0.write(handle, 0, new))
        cluster.fail_site(first_ss)
        assert not handle.closed
        survivor = handle.ss_site
        assert survivor != first_ss
        cluster.call(0, fs0.commit(handle))
        cluster.call(0, fs0.close(handle))
        cluster.restart_site(first_ss)
        cluster.settle()
        assert cluster.shell(0).read_file("/w") == new
        assert cluster.site(0).metrics.counters["fs.write_failovers"] >= 1
        assert fsck(cluster).clean

    def test_rehome_fails_closed_when_no_copy_survives(self):
        """Single-copy file: the paper's failure action still applies —
        error in the descriptor, old content intact."""
        cluster, gfile = _write_cluster(seed=36, root_pack_sites=(1,),
                                        n_sites=2)
        fs0 = cluster.site(0).fs
        handle = cluster.call(0, fs0.open_gfile(gfile, Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"Q" * 1024))
        cluster.fail_site(1)
        cluster.settle()
        assert handle.closed
        assert "lost" in handle.attrs.get("error", "")
        cluster.restart_site(1)
        cluster.settle()
        assert cluster.shell(0).read_file("/w") == b"seed" * 64

    def test_flag_off_write_still_dies_with_its_ss(self):
        """With the feature off, the paper's failure action stands: the
        descriptor errors out and the partial write is discarded."""
        cost = CostModel().with_overrides(exactly_once_writes=False)
        cluster = LocusCluster(n_sites=3, seed=35, root_pack_sites=[1, 2],
                               cost=cost)
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        sh0.write_file("/w", b"old" * 100)
        cluster.settle()
        ino = sh0.stat("/w")["ino"]
        fs0 = cluster.site(0).fs
        handle = cluster.call(
            0, fs0.open_gfile((ROOT_GFS, ino), Mode.WRITE))
        cluster.call(0, fs0.write(handle, 0, b"Z" * 1024))
        cluster.fail_site(handle.ss_site)
        cluster.settle()
        assert handle.closed
        assert cluster.shell(0).read_file("/w") == b"old" * 100
