"""Transparent remote device access (paper section 2.4.2)."""

from collections import deque

import pytest

from repro import LocusCluster
from repro.errors import EACCES, EBADF, ENOENT


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=33)


@pytest.fixture
def printer(cluster):
    """A line printer wired to site 2."""
    spool = []
    cluster.site(2).proc.devices.register(
        "lp0", write_fn=lambda data: spool.append(data) or len(data))
    return spool


@pytest.fixture
def tape(cluster):
    """A tape drive at site 1 with canned content."""
    blocks = deque([b"block-one|", b"block-two|"])
    cluster.site(1).proc.devices.register(
        "mt0", read_fn=lambda n: blocks.popleft() if blocks else b"")
    return blocks


class TestDeviceNodes:
    def test_device_node_in_global_tree(self, cluster, printer):
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/lp0", host=2, device="lp0")
        assert "lp0" in sh.readdir("/dev")

    def test_remote_write_reaches_host_driver(self, cluster, printer):
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/lp0", host=2, device="lp0")
        fd = sh.open("/dev/lp0", "w")
        assert sh.write(fd, b"hello printer") == 13
        sh.close(fd)
        assert printer == [b"hello printer"]

    def test_remote_read_from_host_driver(self, cluster, tape):
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/mt0", host=1, device="mt0")
        fd = sh.open("/dev/mt0")
        assert sh.read(fd, 100) == b"block-one|"
        assert sh.read(fd, 100) == b"block-two|"
        assert sh.read(fd, 100) == b""
        sh.close(fd)

    def test_local_access_uses_no_messages(self, cluster, printer):
        from repro.net.stats import StatsWindow
        sh2 = cluster.shell(2)
        sh2.mkdir("/dev")
        sh2.mknod_device("/dev/lp0", host=2, device="lp0")
        cluster.settle()
        fd = sh2.open("/dev/lp0", "w")
        win = StatsWindow(cluster.stats)
        sh2.write(fd, b"local job")
        assert win.close().total_messages == 0
        sh2.close(fd)

    def test_same_name_different_sites(self, cluster, printer):
        """Two printers, one name each; the node says which hardware."""
        other_spool = []
        cluster.site(1).proc.devices.register(
            "lp0", write_fn=lambda d: other_spool.append(d) or len(d))
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/lp-far", host=2, device="lp0")
        sh.mknod_device("/dev/lp-near", host=1, device="lp0")
        fd = sh.open("/dev/lp-far", "w")
        sh.write(fd, b"to site 2")
        sh.close(fd)
        fd = sh.open("/dev/lp-near", "w")
        sh.write(fd, b"to site 1")
        sh.close(fd)
        assert printer == [b"to site 2"]
        assert other_spool == [b"to site 1"]


class TestDeviceErrors:
    def test_raw_device_refuses_remote_access(self, cluster):
        """The paper's one exception: raw, non-character devices cannot be
        accessed remotely — execute a process at the hosting site."""
        cluster.site(1).proc.devices.register(
            "rd0", read_fn=lambda n: b"", character=False)
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/rd0", host=1, device="rd0", character=False)
        with pytest.raises(EACCES):
            sh.open("/dev/rd0")
        # A process running at the hosting site may use it.
        sh1 = cluster.shell(1)
        fd = sh1.open("/dev/rd0")
        sh1.close(fd)

    def test_unregistered_device_enoent(self, cluster):
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/ghost", host=1, device="ghost")
        with pytest.raises(ENOENT):
            sh.open("/dev/ghost")

    def test_write_to_read_only_device(self, cluster, tape):
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/mt0", host=1, device="mt0")
        fd = sh.open("/dev/mt0", "w")
        with pytest.raises(EBADF):
            sh.write(fd, b"tapes are read-only here")
        sh.close(fd)

    def test_device_survives_host_reboot(self, cluster, printer):
        sh = cluster.shell(0)
        sh.mkdir("/dev")
        sh.mknod_device("/dev/lp0", host=2, device="lp0")
        cluster.settle()
        cluster.fail_site(2)
        cluster.restart_site(2)
        fd = sh.open("/dev/lp0", "w")
        sh.write(fd, b"after reboot")
        sh.close(fd)
        assert printer == [b"after reboot"]
