"""Fault injection: message loss, descriptor exhaustion, flaky networks.

Message loss maps to the paper's model exactly: "If a message is lost, the
circuit is closed" (section 5.1), so losses surface as failure detection
and reconfiguration churn — never as silent inconsistency.

All faults here are scripted through :class:`repro.faults.FaultPlan`, so
every scenario is replayable from its seed + plan JSON (see docs/FAULTS.md).
"""

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import EMFILE, LocusError
from repro.faults import FaultPlan
from repro.tools import fsck


def _fired(inj, kind):
    return [d for __, k, d in inj.trace if k == kind]


class TestMessageLoss:
    def test_lossy_network_never_corrupts(self):
        """5% message loss during a write workload: operations may fail,
        the membership may churn, but after the weather clears everything
        reconciles and fsck is clean."""
        cluster = LocusCluster(n_sites=3, seed=201)
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/survivor", b"gen 0")
        cluster.settle()

        t0 = cluster.sim.now
        weather = 150_000.0
        inj = cluster.inject(FaultPlan(seed=201, name="lossy-weather")
                             .loss_burst(at=t0, rate=0.05, duration=weather))
        completed = 0
        for i in range(30):
            writer = cluster.shell(i % 3)
            try:
                writer.write_file(f"/f{i % 5}", f"gen {i}".encode())
                completed += 1
            except LocusError:
                pass   # a closed circuit failed the call: acceptable
            cluster.settle(max_time=2000)
        assert completed > 0

        # Weather clears: the scripted restore fires, then merge everyone
        # back and reconcile.
        cluster.sim.run(until=t0 + weather + 1.0)
        assert _fired(inj, "loss_restore"), "burst never expired"
        assert cluster.net.loss_rate == 0.0
        cluster.heal()
        cluster.settle()
        from repro.tools import fsck_repair
        report = fsck_repair(cluster)   # retire any loss-orphaned inodes
        # Conflicts cannot arise from loss alone (no partitioned writes
        # succeeded on both sides of a real split), and structures must
        # be intact.
        assert report.clean, report.summary()
        assert sh.read_file("/survivor") == b"gen 0"

    def test_loss_closes_circuits_and_counts_drops(self):
        cluster = LocusCluster(n_sites=2, seed=202)
        inj = cluster.inject(           # everything is lost
            FaultPlan(seed=202).loss_burst(at=cluster.sim.now, rate=1.0,
                                           duration=1_000_000.0))
        sh = cluster.shell(0)
        with pytest.raises(LocusError):
            # Any remote operation fails fast via the closed circuit.
            cluster.shell(1).write_file("/x", b"1")
            sh.read_file("/x")
            raise LocusError("remote op unexpectedly succeeded")
        assert _fired(inj, "loss_burst")
        assert cluster.stats.dropped >= 1
        assert cluster.stats.circuits_closed >= 1


class TestDescriptorExhaustion:
    def test_emfile_at_process_limit(self):
        cluster = LocusCluster(n_sites=1, seed=203)
        sh = cluster.shell(0)
        sh.write_file("/target", b"x")
        fds = []
        with pytest.raises(EMFILE):
            for __ in range(200):
                fds.append(sh.open("/target"))
        assert len(fds) > 32          # a sane Unix-like limit
        for fd in fds:
            sh.close(fd)
        # After closing, descriptors are available again.
        fd = sh.open("/target")
        sh.close(fd)


class TestCrashDuringProtocols:
    def test_crash_mid_directory_update_leaves_old_dir(self):
        """The directory commit is atomic: killing the storage site between
        entry staging and commit leaves the previous directory content."""
        cluster = LocusCluster(n_sites=2, seed=204, root_pack_sites=[1])
        sh0 = cluster.shell(0)
        sh0.mkdir("/d")
        sh0.write_file("/d/before", b"1")
        cluster.settle()
        # Start a create whose directory update commits at site 1; the
        # scripted crash kills site 1 at an awkward mid-protocol moment.
        inj = cluster.inject(FaultPlan(seed=204, name="mid-create-crash")
                             .crash(at=cluster.sim.now + 5.0, site=1))
        fs0 = cluster.site(0).fs
        cluster.spawn(0, fs0.create_file(sh0.proc, "/d/during"))
        cluster.settle()
        assert _fired(inj, "crash"), "crash never fired"
        cluster.restart_site(1)
        cluster.settle()
        names = set(sh0.readdir("/d"))
        # Either the update committed fully or not at all.
        assert names in ({"before"}, {"before", "during"})
        assert fsck(cluster).clean


class TestBatchedWriteFaults:
    """The write-behind flush (CostModel.batch_writes) under faults: a
    staged batch that only partially reaches the storage site must abort,
    never half-commit."""

    def _batched(self, seed=301):
        return LocusCluster(
            n_sites=2, seed=seed, root_pack_sites=[0],
            cost=CostModel().with_overrides(batch_writes=True,
                                            batch_pages=4))

    def test_us_crash_mid_staged_write_aborts_cleanly(self):
        """The using site dies between flushing staged chunks and the
        commit: the storage site must discard the shadow pages and keep
        the old content."""
        cluster = self._batched()
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        old = b"old" * 1500
        sh1.write_file("/w", old)
        cluster.settle()
        fs1 = cluster.site(1).fs

        def half_op():
            from repro.fs.types import Mode
            gfile, __ = yield from fs1.resolve_gfile(None, "/w")
            handle = yield from fs1.open_gfile(gfile, Mode.WRITE)
            yield from fs1.write(handle, 0, b"NEW" * 4000)
            yield 10_000_000.0          # never reaches the commit

        inj = cluster.inject(FaultPlan(seed=301, name="writer-dies")
                             .crash(at=cluster.sim.now + 50.0, site=1))
        cluster.spawn(1, half_op())
        cluster.settle()                # the writer dies mid-protocol
        assert _fired(inj, "crash"), "crash never fired"
        assert sh0.read_file("/w") == old
        cluster.restart_site(1)
        cluster.settle()
        assert cluster.shell(1).read_file("/w") == old
        assert fsck(cluster).clean

    def test_lossy_network_with_batching_never_corrupts(self):
        """The TestMessageLoss invariant, batched edition: 5% loss with
        both batching flags on may fail individual operations but must
        never leave corruption or divergence once the weather clears."""
        cluster = LocusCluster(
            n_sites=3, seed=302,
            cost=CostModel().with_overrides(
                batch_writes=True, pull_manifest=True,
                batch_pages=4, pull_pipeline=4))
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/survivor", b"gen 0")
        cluster.settle()
        t0 = cluster.sim.now
        weather = 150_000.0
        inj = cluster.inject(FaultPlan(seed=302, name="lossy-batched")
                             .loss_burst(at=t0, rate=0.05, duration=weather))
        completed = 0
        for i in range(30):
            writer = cluster.shell(i % 3)
            try:
                writer.write_file(f"/f{i % 5}", (f"gen {i}" * 40).encode())
                completed += 1
            except LocusError:
                pass
            cluster.settle(max_time=2000)
        assert completed > 0
        cluster.sim.run(until=t0 + weather + 1.0)
        assert _fired(inj, "loss_restore"), "burst never expired"
        cluster.heal()
        cluster.settle()
        from repro.tools import fsck_repair
        report = fsck_repair(cluster)
        assert report.clean, report.summary()
        assert sh.read_file("/survivor") == b"gen 0"


class TestManifestPullFaults:
    """The manifest heal path (CostModel.pull_manifest) under faults: a
    lost manifest or a lost pull falls back / retries from the queue, and
    the cluster still converges."""

    def _diverged(self, seed, n_files=8):
        cluster = LocusCluster(
            n_sites=2, seed=seed,
            cost=CostModel().with_overrides(pull_manifest=True,
                                            pull_pipeline=4,
                                            batch_pages=4))
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        for i in range(n_files):
            sh0.write_file(f"/m{i}", b"a" * 100)
        cluster.settle()
        cluster.partition({0}, {1})
        for i in range(n_files):
            sh0.write_file(f"/m{i}", bytes([i + 1]) * 300)
        return cluster, n_files

    def test_lost_manifest_falls_back_to_per_file_pulls(self):
        """Losing the fs.pull_manifest RPC must not stall the heal: every
        file still arrives through the per-file fs.pull_open protocol."""
        cluster, n = self._diverged(seed=303)
        inj = cluster.inject(
            FaultPlan(seed=303).drop("fs.pull_manifest", count=1))
        cluster.heal()
        cluster.settle()
        assert _fired(inj, "dropped") == ["fs.pull_manifest"], \
            "fault never fired"
        sh1 = cluster.shell(1)
        for i in range(n):
            assert sh1.read_file(f"/m{i}") == bytes([i + 1]) * 300
        assert fsck(cluster).clean

    def test_lost_pull_mid_wave_retries_from_queue(self):
        """A pull-read lost inside a manifest wave closes the circuit;
        the affected file is requeued and retried — not forgotten, and
        the heal does not restart from scratch."""
        cluster, n = self._diverged(seed=304)
        inj = cluster.inject(
            FaultPlan(seed=304).drop("fs.pull_read_range", count=1))
        cluster.heal()
        cluster.settle()
        assert _fired(inj, "dropped") == ["fs.pull_read_range"], \
            "fault never fired"
        sh1 = cluster.shell(1)
        for i in range(n):
            assert sh1.read_file(f"/m{i}") == bytes([i + 1]) * 300
        prop = cluster.site(1).fs.propagator.stats
        assert prop.failed >= 1          # the loss was seen and retried
        assert fsck(cluster).clean

    def test_source_crash_mid_heal_recovers_after_restart(self):
        """The only source site dies mid-heal: pulls defer, and once it
        returns the propagation queue drains to convergence."""
        cluster, n = self._diverged(seed=305)
        inj = cluster.inject(FaultPlan(seed=305, name="source-dies")
                             .crash(at=cluster.sim.now + 30.0, site=0))
        cluster.heal(settle=False)
        cluster.settle(max_time=20000)
        assert _fired(inj, "crash"), "crash never fired"
        cluster.restart_site(0)
        cluster.settle(max_time=50000)
        sh1 = cluster.shell(1)
        for i in range(n):
            assert sh1.read_file(f"/m{i}") == bytes([i + 1]) * 300
        assert fsck(cluster).clean
