"""Fault injection: message loss, descriptor exhaustion, flaky networks.

Message loss maps to the paper's model exactly: "If a message is lost, the
circuit is closed" (section 5.1), so losses surface as failure detection
and reconfiguration churn — never as silent inconsistency.
"""

import pytest

from repro import LocusCluster
from repro.errors import EMFILE, LocusError
from repro.tools import fsck


class TestMessageLoss:
    def test_lossy_network_never_corrupts(self):
        """5% message loss during a write workload: operations may fail,
        the membership may churn, but after the weather clears everything
        reconciles and fsck is clean."""
        cluster = LocusCluster(n_sites=3, seed=201)
        sh = cluster.shell(0)
        sh.setcopies(3)
        sh.write_file("/survivor", b"gen 0")
        cluster.settle()

        cluster.net.loss_rate = 0.05
        completed = 0
        for i in range(30):
            writer = cluster.shell(i % 3)
            try:
                writer.write_file(f"/f{i % 5}", f"gen {i}".encode())
                completed += 1
            except LocusError:
                pass   # a closed circuit failed the call: acceptable
            cluster.settle(max_time=2000)
        assert completed > 0

        # Weather clears: merge everyone back and reconcile.
        cluster.net.loss_rate = 0.0
        cluster.heal()
        cluster.settle()
        from repro.tools import fsck_repair
        report = fsck_repair(cluster)   # retire any loss-orphaned inodes
        # Conflicts cannot arise from loss alone (no partitioned writes
        # succeeded on both sides of a real split), and structures must
        # be intact.
        assert report.clean, report.summary()
        assert sh.read_file("/survivor") == b"gen 0"

    def test_loss_closes_circuits_and_counts_drops(self):
        cluster = LocusCluster(n_sites=2, seed=202)
        cluster.net.loss_rate = 1.0       # everything is lost
        sh = cluster.shell(0)
        with pytest.raises(LocusError):
            # Any remote operation fails fast via the closed circuit.
            cluster.shell(1).write_file("/x", b"1")
            sh.read_file("/x")
            raise LocusError("remote op unexpectedly succeeded")
        assert cluster.stats.dropped >= 1
        assert cluster.stats.circuits_closed >= 1


class TestDescriptorExhaustion:
    def test_emfile_at_process_limit(self):
        cluster = LocusCluster(n_sites=1, seed=203)
        sh = cluster.shell(0)
        sh.write_file("/target", b"x")
        fds = []
        with pytest.raises(EMFILE):
            for __ in range(200):
                fds.append(sh.open("/target"))
        assert len(fds) > 32          # a sane Unix-like limit
        for fd in fds:
            sh.close(fd)
        # After closing, descriptors are available again.
        fd = sh.open("/target")
        sh.close(fd)


class TestCrashDuringProtocols:
    def test_crash_mid_directory_update_leaves_old_dir(self):
        """The directory commit is atomic: killing the storage site between
        entry staging and commit leaves the previous directory content."""
        cluster = LocusCluster(n_sites=2, seed=204, root_pack_sites=[1])
        sh0 = cluster.shell(0)
        sh0.mkdir("/d")
        sh0.write_file("/d/before", b"1")
        cluster.settle()
        # Start a create whose directory update commits at site 1; crash
        # site 1 at an awkward moment by running the op only part way.
        fs0 = cluster.site(0).fs
        task = cluster.spawn(0, fs0.create_file(sh0.proc, "/d/during"))
        cluster.sim.run(until=cluster.sim.now + 5)    # mid-protocol
        cluster.fail_site(1)
        cluster.settle()
        cluster.restart_site(1)
        cluster.settle()
        names = set(sh0.readdir("/d"))
        # Either the update committed fully or not at all.
        assert names in ({"before"}, {"before", "during"})
        assert fsck(cluster).clean
