"""Nested transactions ([MEUL 83]): atomicity across files, nesting,
partition aborts."""

import pytest

from repro import LocusCluster
from repro.errors import EBUSY, EINVAL, TxAborted
from repro.tx.manager import TxState


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=41)


@pytest.fixture
def sh(cluster):
    return cluster.shell(0)


def gfile_of(sh, path):
    return (0, sh.stat(path)["ino"])


class TestTopLevel:
    def test_commit_applies_all_files(self, cluster, sh):
        sh.write_file("/a", b"a0")
        sh.write_file("/b", b"b0")
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.write(tx, gfile_of(sh, "/a"), 0, b"a1"))
        cluster.call(0, tm.write(tx, gfile_of(sh, "/b"), 0, b"b1"))
        # Uncommitted: other opens are locked out, disk still old.
        cluster.call(0, tm.commit(tx))
        assert sh.read_file("/a") == b"a1"
        assert sh.read_file("/b") == b"b1"

    def test_abort_reverts_all_files(self, cluster, sh):
        sh.write_file("/a", b"a0")
        sh.write_file("/b", b"b0")
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.write(tx, gfile_of(sh, "/a"), 0, b"XX"))
        cluster.call(0, tm.write(tx, gfile_of(sh, "/b"), 0, b"YY"))
        cluster.call(0, tm.abort(tx))
        assert sh.read_file("/a") == b"a0"
        assert sh.read_file("/b") == b"b0"

    def test_transaction_spans_remote_storage_sites(self, cluster, sh):
        sh1, sh2 = cluster.shell(1), cluster.shell(2)
        sh1.write_file("/at1", b"one")
        sh2.write_file("/at2", b"two")
        cluster.settle()
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.write(tx, gfile_of(sh, "/at1"), 0, b"ONE"))
        cluster.call(0, tm.write(tx, gfile_of(sh, "/at2"), 0, b"TWO"))
        cluster.call(0, tm.commit(tx))
        assert sh1.read_file("/at1") == b"ONE"
        assert sh2.read_file("/at2") == b"TWO"

    def test_locks_exclude_other_writers_until_commit(self, cluster, sh):
        sh.write_file("/locked", b"x")
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.write(tx, gfile_of(sh, "/locked"), 0, b"y"))
        sh1 = cluster.shell(1)
        with pytest.raises(EBUSY):
            sh1.open("/locked", "w")
        cluster.call(0, tm.commit(tx))
        fd = sh1.open("/locked", "w")
        sh1.close(fd)

    def test_read_own_writes(self, cluster, sh):
        sh.write_file("/rw", b"before")
        tm = cluster.site(0).tx
        tx = tm.begin()
        g = gfile_of(sh, "/rw")
        cluster.call(0, tm.write(tx, g, 0, b"after!"))
        assert cluster.call(0, tm.read(tx, g, 0, 6)) == b"after!"
        cluster.call(0, tm.abort(tx))

    def test_operations_after_abort_raise(self, cluster, sh):
        sh.write_file("/dead", b"x")
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.abort(tx))
        with pytest.raises(TxAborted):
            cluster.call(0, tm.write(tx, gfile_of(sh, "/dead"), 0, b"y"))


class TestNesting:
    def test_subtransaction_commit_folds_into_parent(self, cluster, sh):
        sh.write_file("/n", b"base")
        tm = cluster.site(0).tx
        parent = tm.begin()
        child = tm.begin(parent=parent)
        cluster.call(0, tm.write(child, gfile_of(sh, "/n"), 0, b"chld"))
        cluster.call(0, tm.commit(child))
        # Not yet visible: only the top-level commit makes it permanent.
        assert sh.stat("/n")["size"] == 4
        pack = cluster.site(0).packs[0]
        ino = sh.stat("/n")["ino"]
        committed = pack.read_block(pack.get_inode(ino).pages[0])
        assert committed == b"base"
        cluster.call(0, tm.commit(parent))
        assert sh.read_file("/n") == b"chld"

    def test_subtransaction_abort_spares_parent(self, cluster, sh):
        sh.write_file("/p", b"pppp")
        sh.write_file("/c", b"cccc")
        tm = cluster.site(0).tx
        parent = tm.begin()
        cluster.call(0, tm.write(parent, gfile_of(sh, "/p"), 0, b"PPPP"))
        child = tm.begin(parent=parent)
        cluster.call(0, tm.write(child, gfile_of(sh, "/c"), 0, b"CCCC"))
        cluster.call(0, tm.abort(child))
        cluster.call(0, tm.commit(parent))
        assert sh.read_file("/p") == b"PPPP"   # parent's work survived
        assert sh.read_file("/c") == b"cccc"   # child's was undone

    def test_nested_sees_parent_staged_state(self, cluster, sh):
        sh.write_file("/shared", b"v0")
        tm = cluster.site(0).tx
        parent = tm.begin()
        g = gfile_of(sh, "/shared")
        cluster.call(0, tm.write(parent, g, 0, b"v1"))
        child = tm.begin(parent=parent)
        assert cluster.call(0, tm.read(child, g, 0, 2)) == b"v1"
        cluster.call(0, tm.commit(child))
        cluster.call(0, tm.commit(parent))

    def test_commit_with_active_subtransaction_rejected(self, cluster, sh):
        tm = cluster.site(0).tx
        parent = tm.begin()
        tm.begin(parent=parent)
        with pytest.raises(EINVAL):
            cluster.call(0, tm.commit(parent))

    def test_child_abort_through_inherited_handle_rolls_back(self, cluster,
                                                             sh):
        """A subtransaction writing to a file its parent already holds must
        restore the parent's staged state when it aborts (savepoints)."""
        sh.write_file("/acct", b"1000")
        tm = cluster.site(0).tx
        parent = tm.begin()
        g = gfile_of(sh, "/acct")
        cluster.call(0, tm.write(parent, g, 0, b"0700"))   # parent's work
        child = tm.begin(parent=parent)
        cluster.call(0, tm.write(child, g, 0, b"0690"))    # child's fee
        cluster.call(0, tm.abort(child))
        # The parent's staged value is back; its own write survived.
        assert cluster.call(0, tm.read(parent, g, 0, 4)) == b"0700"
        cluster.call(0, tm.commit(parent))
        assert sh.read_file("/acct") == b"0700"

    def test_parent_abort_cascades_to_children(self, cluster, sh):
        sh.write_file("/cascade", b"orig")
        tm = cluster.site(0).tx
        parent = tm.begin()
        child = tm.begin(parent=parent)
        cluster.call(0, tm.write(child, gfile_of(sh, "/cascade"), 0,
                                 b"temp"))
        cluster.call(0, tm.abort(parent))
        assert child.state is TxState.ABORTED
        assert sh.read_file("/cascade") == b"orig"


class TestPartitionAbort:
    def test_partition_aborts_transactions_spanning_lost_sites(self, cluster,
                                                               sh):
        """Section 5.6: 'abort all related subtransactions in partition'."""
        sh2 = cluster.shell(2)
        sh2.write_file("/faraway", b"far")
        cluster.settle()
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.write(tx, gfile_of(sh, "/faraway"), 0, b"FAR"))
        cluster.partition({0, 1}, {2})
        assert tx.state is TxState.ABORTED
        assert tm.stats["partition_aborts"] == 1
        cluster.heal()
        assert sh2.read_file("/faraway") == b"far"   # staged change undone

    def test_local_transaction_survives_unrelated_partition(self, cluster,
                                                            sh):
        sh.write_file("/nearby", b"near")
        cluster.settle()
        tm = cluster.site(0).tx
        tx = tm.begin()
        cluster.call(0, tm.write(tx, gfile_of(sh, "/nearby"), 0, b"NEAR"))
        cluster.partition({0, 1}, {2})
        assert tx.state is TxState.ACTIVE
        cluster.call(0, tm.commit(tx))
        assert sh.read_file("/nearby") == b"NEAR"
