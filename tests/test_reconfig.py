"""Dynamic reconfiguration protocols (paper section 5)."""

import pytest

from repro import LocusCluster
from repro.net.stats import StatsWindow


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=5, seed=31)


class TestPartitionProtocol:
    def test_consensus_within_each_side(self, cluster):
        cluster.partition({0, 1, 2}, {3, 4})
        for s in (0, 1, 2):
            assert cluster.site(s).topology.partition_set == {0, 1, 2}
        for s in (3, 4):
            assert cluster.site(s).topology.partition_set == {3, 4}

    def test_three_way_partition(self, cluster):
        cluster.partition({0}, {1, 2}, {3, 4})
        assert cluster.site(0).topology.partition_set == {0}
        assert cluster.site(1).topology.partition_set == {1, 2}
        assert cluster.site(4).topology.partition_set == {3, 4}

    def test_site_failure_shrinks_partition(self, cluster):
        cluster.fail_site(2)
        for s in (0, 1, 3, 4):
            assert cluster.site(s).topology.partition_set == {0, 1, 3, 4}

    def test_sequential_failures(self, cluster):
        cluster.fail_site(4)
        cluster.fail_site(3)
        for s in (0, 1, 2):
            assert cluster.site(s).topology.partition_set == {0, 1, 2}

    def test_partition_sets_are_strict_partitions(self, cluster):
        """Communication in a fully-connected network is an equivalence
        relation: the partition sets must be disjoint or identical."""
        cluster.partition({0, 3}, {1, 2, 4})
        sets = [frozenset(cluster.site(s).topology.partition_set)
                for s in range(5)]
        for a in sets:
            for b in sets:
                assert a == b or not (a & b)

    def test_epoch_advances_on_reconfiguration(self, cluster):
        before = cluster.site(0).topology.epoch
        cluster.partition({0, 1, 2}, {3, 4})
        assert cluster.site(0).topology.epoch > before


class TestMergeProtocol:
    def test_merge_restores_full_membership(self, cluster):
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.heal()
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))

    def test_merge_of_three_partitions(self, cluster):
        cluster.partition({0}, {1, 2}, {3, 4})
        cluster.heal()
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))

    def test_merge_initiated_from_any_site(self, cluster):
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.heal(merge_from=4)
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))

    def test_concurrent_merge_initiators_converge(self, cluster):
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.net.heal()
        # Two initiators race; the actsite arbitration settles it.
        cluster.site(3).topology.request_merge()
        cluster.site(0).topology.request_merge()
        cluster.settle()
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))

    def test_partial_heal_partial_merge(self, cluster):
        cluster.partition({0, 1}, {2, 3}, {4})
        # Repair only the 2-3 / 4 boundary.
        cluster.net.set_partitions([{0, 1}, {2, 3, 4}])
        cluster.site(2).topology.request_merge()
        cluster.settle()
        assert cluster.site(0).topology.partition_set == {0, 1}
        for s in (2, 3, 4):
            assert cluster.site(s).topology.partition_set == {2, 3, 4}

    def test_restart_rejoins_via_merge(self, cluster):
        cluster.fail_site(1)
        assert cluster.site(0).topology.partition_set == {0, 2, 3, 4}
        cluster.restart_site(1)
        for s in range(5):
            assert cluster.site(s).topology.partition_set == set(range(5))


class TestCssReelection:
    def test_css_moves_when_old_css_unreachable(self, cluster):
        assert cluster.site(3).fs.mount.css_for(0) == 0
        cluster.partition({0, 1}, {2, 3, 4})
        assert cluster.site(3).fs.mount.css_for(0) == 2
        cluster.heal()
        assert cluster.site(3).fs.mount.css_for(0) == 0

    def test_file_operations_work_under_new_css(self, cluster):
        sh3 = cluster.shell(3)
        sh3.setcopies(5)
        sh3.write_file("/survivor", b"before")
        cluster.settle()
        cluster.partition({0, 1}, {2, 3, 4})
        # The old CSS (site 0) is on the other side; site 2 takes over.
        assert sh3.read_file("/survivor") == b"before"
        sh3.write_file("/survivor", b"after under new css")
        assert cluster.shell(4).read_file("/survivor") == \
            b"after under new css"

    def test_new_css_rebuilds_open_state(self, cluster):
        """Section 5.6: the new synchronization site reconstructs the lock
        table from the information remaining in the partition."""
        sh3 = cluster.shell(3)
        sh3.setcopies(5)
        sh3.write_file("/locked", b"x")
        cluster.settle()
        fd = sh3.open("/locked", "w")       # writer lock at CSS 0
        cluster.partition({0, 1}, {2, 3, 4})
        gfile = (0, sh3.stat("/locked")["ino"])
        entry = cluster.site(2).fs.css_entries.get(gfile)
        assert entry is not None and entry.writer == 3
        # The rebuilt lock still excludes a second writer.
        from repro.errors import EBUSY
        with pytest.raises(EBUSY):
            cluster.shell(4).open("/locked", "w")
        sh3.close(fd)


class TestCleanupTable:
    def test_remote_read_reopens_at_other_site(self, cluster):
        """'File (open for read): internal close, attempt to reopen at
        other site' — invisible to the process (section 5.2)."""
        sh0 = cluster.shell(0)
        sh0.setcopies(2)
        sh0.write_file("/dual", b"0123456789")
        cluster.settle()
        copy_sites = sh0.stat("/dual")["storage_sites"]
        reader_site = [s for s in range(5) if s not in copy_sites][0]
        rsh = cluster.shell(reader_site)
        fd = rsh.open("/dual")
        assert rsh.read(fd, 4) == b"0123"
        # Kill the storage site actually serving the reader.
        handle = next(iter(cluster.site(reader_site).fs.us.values()))
        cluster.fail_site(handle.ss_site)
        # The read continues against the substituted copy.
        assert rsh.read(fd, 4) == b"4567"
        rsh.close(fd)

    def test_remote_write_gets_error_in_descriptor(self, cluster):
        sh0 = cluster.shell(0)
        sh0.setcopies(1)
        sh0.write_file("/solo", b"data")
        cluster.settle()
        sh4 = cluster.shell(4)
        fd = sh4.open("/solo", "w")
        sh4.write(fd, b"pending")
        cluster.fail_site(0)
        from repro.errors import EBADF, FsError, NetworkError
        with pytest.raises((EBADF, FsError, NetworkError)):
            sh4.write(fd, b"more")
            sh4.close(fd)

    def test_ss_aborts_updates_of_lost_writer(self, cluster):
        """'Local file in use remotely (update): discard pages, close file
        and abort updates'."""
        sh0 = cluster.shell(0)
        sh0.setcopies(1)
        sh0.write_file("/abandon", b"committed")
        cluster.settle()
        sh4 = cluster.shell(4)
        fd = sh4.open("/abandon", "w")
        sh4.pwrite(fd, 0, b"uncommitt")
        cluster.fail_site(4)
        # The staged change was aborted at the storage site.
        assert sh0.read_file("/abandon") == b"committed"
        gfile = (0, sh0.stat("/abandon")["ino"])
        assert gfile not in cluster.site(0).fs.ss


class TestReconfigurationCost:
    def test_partition_protocol_message_count_linear(self, cluster):
        win = StatsWindow(cluster.stats)
        cluster.partition({0, 1, 2, 3}, {4})
        snap = win.close()
        polls = snap.sent.get("topo.part_poll", 0)
        announces = snap.sent.get("topo.part_announce", 0)
        assert polls >= 3            # consensus needed polling
        assert 0 < announces <= 20   # no broadcast storm

    def test_user_activity_continues_during_reconfiguration(self, cluster):
        """Section 5.2 principle 1: user activity should continue without
        adverse effect provided no resources are lost."""
        sh0 = cluster.shell(0)
        sh0.write_file("/busy", b"before")
        cluster.partition({0, 1, 2, 3}, {4}, settle=False)
        # Immediately use the filesystem while protocols run.
        assert sh0.read_file("/busy") == b"before"
        sh0.write_file("/busy", b"during reconfiguration")
        cluster.settle()
        assert sh0.read_file("/busy") == b"during reconfiguration"
