"""Pathname shipping (the section 2.3.4 extension).

"Another strategy for pathname searching is to ship partial pathnames to
foreign sites so they can do the expansion locally, avoiding remote
directory opens and network transmission of directory pages ... more
complex in the general case because the SS for each intermediate directory
could be different."
"""

import pytest

from repro import CostModel, LocusCluster
from repro.errors import ENOENT, ENOTDIR
from repro.net.stats import StatsWindow

DEPTH = 5


def build_cluster(shipping: bool, root_packs=None):
    cluster = LocusCluster(n_sites=3, seed=107,
                           root_pack_sites=root_packs,
                           cost=CostModel(pathname_shipping=shipping))
    return cluster


def deep_tree(shell, cluster):
    path = ""
    for i in range(DEPTH):
        path += f"/d{i}"
        shell.mkdir(path)
    shell.write_file(path + "/leaf", b"the payload")
    cluster.settle()
    return path + "/leaf"


class TestShippedResolution:
    def test_same_results_as_interrogation(self):
        plain = build_cluster(False)
        shipped = build_cluster(True)
        for cluster in (plain, shipped):
            sh = cluster.shell(1)     # dirs will live at site 1
            leaf = deep_tree(sh, cluster)
            reader = cluster.shell(0)
            assert reader.read_file(leaf) == b"the payload"
            assert reader.readdir("/d0/d1") == ["d2"]
            with pytest.raises(ENOENT):
                reader.read_file("/d0/missing")
            with pytest.raises(ENOTDIR):
                reader.read_file(leaf + "/below-a-file")

    def test_shipping_sends_fewer_messages_on_deep_remote_paths(self):
        """The whole point: one shipped request replaces per-component
        directory page traffic."""
        results = {}
        for shipping in (False, True):
            cluster = build_cluster(shipping, root_packs=[1])
            sh1 = cluster.shell(1)
            leaf = deep_tree(sh1, cluster)
            reader = cluster.site(0).fs
            win = StatsWindow(cluster.stats)
            gfile, __ = cluster.call(0, reader.resolve_gfile(None, leaf))
            results[shipping] = win.close().total_messages
        assert results[True] < results[False] / 2, results

    def test_shipped_hidden_directory_uses_callers_context(self):
        """The shipped expansion must match against the *caller's* context,
        not the serving site's machine type."""
        cluster = build_cluster(True)
        cluster.set_cpu_type(1, "pdp11")
        admin = cluster.shell(1)       # dirs stored at site 1 (pdp11)
        admin.mkdir("/cmd", hidden=True)
        admin.set_hidden_visible(True)
        admin.write_file("/cmd/vax", b"vax module")
        admin.write_file("/cmd/pdp11", b"pdp module")
        admin.set_hidden_visible(False)
        cluster.settle()
        vax_user = cluster.shell(0)    # site 0 is a vax
        assert vax_user.read_file("/cmd") == b"vax module"

    def test_shipping_across_filegroup_mounts(self):
        cluster = build_cluster(True)
        sh = cluster.shell(0)
        sh.mkdir("/usr")
        cluster.add_filegroup("usr", pack_sites=[1, 2], mount_at="/usr")
        cluster.settle()
        sh.mkdir("/usr/deep")
        sh.write_file("/usr/deep/file", b"crossed")
        cluster.settle()
        assert cluster.shell(2).read_file("/usr/deep/file") == b"crossed"

    def test_dotdot_through_shipping(self):
        cluster = build_cluster(True, root_packs=[1])
        sh1 = cluster.shell(1)
        sh1.mkdir("/a")
        sh1.mkdir("/a/b")
        sh1.write_file("/marker", b"up here")
        cluster.settle()
        assert cluster.shell(0).read_file("/a/b/../../marker") == b"up here"


def test_model_equivalence_under_shipping(monkeypatch):
    """The model-based random sequences also pass with shipping enabled."""
    import os
    import sys
    sys.path.insert(0, os.path.dirname(__file__))
    import test_model_based as M
    from repro import LocusCluster as RealCluster

    def shipped_cluster(n_sites, seed):
        return RealCluster(n_sites=n_sites, seed=seed,
                           cost=CostModel(pathname_shipping=True))

    monkeypatch.setattr(M, "LocusCluster", shipped_cluster)
    assert M._run_sequence(seed=11, n_ops=80) == 80
