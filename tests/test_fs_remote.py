"""Remote file access: transparency and the exact message sequences of
paper section 2.3 / Figure 2.

The cluster has 3 sites, root filegroup packed at all of them, CSS = site 0.
"""

import pytest

from repro import LocusCluster, Mode
from repro.errors import EBUSY
from repro.net.stats import StatsWindow


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=3)


def open_msgs(cluster, us, gfile, mode=Mode.READ):
    """Run one open at `us` and return (handle, open-protocol msg counts)."""
    site = cluster.site(us)
    win = StatsWindow(cluster.stats)
    handle = cluster.call(us, site.fs.open_gfile(gfile, mode))
    snap = win.close()
    protocol = {k: v for k, v in snap.sent.items()
                if k.startswith(("fs.css_open", "fs.ss_open"))}
    return handle, protocol, snap


def make_file(cluster, at_site, path, data=b"x", copies=1):
    shell = cluster.shell(at_site)
    shell.setcopies(copies)
    shell.write_file(path, data)
    cluster.settle()
    return shell.stat(path)


class TestFigure2OpenProtocol:
    """Message counts for the US/CSS/SS role placements (Figure 2)."""

    def test_all_roles_local_zero_messages(self, cluster):
        attrs = make_file(cluster, 0, "/f")          # stored at 0; CSS is 0
        __, protocol, snap = open_msgs(cluster, 0, (0, attrs["ino"]))
        assert snap.total_messages == 0

    def test_us_is_css_remote_ss_two_messages(self, cluster):
        attrs = make_file(cluster, 1, "/f")          # stored at 1; CSS is 0
        __, protocol, __ = open_msgs(cluster, 0, (0, attrs["ino"]))
        # CSS (local) polls the storage site: one request, one response.
        assert protocol == {"fs.ss_open": 1, "fs.ss_open.resp": 1}

    def test_css_stores_file_two_messages(self, cluster):
        attrs = make_file(cluster, 0, "/f")          # stored at CSS site 0
        __, protocol, __ = open_msgs(cluster, 1, (0, attrs["ino"]))
        # "the CSS picks itself as SS (without any message overhead)".
        assert protocol == {"fs.css_open": 1, "fs.css_open.resp": 1}

    def test_us_stores_latest_two_messages(self, cluster):
        attrs = make_file(cluster, 1, "/f")          # stored at the US itself
        __, protocol, __ = open_msgs(cluster, 1, (0, attrs["ino"]))
        # "the CSS selects the US as the SS and just responds appropriately."
        assert protocol == {"fs.css_open": 1, "fs.css_open.resp": 1}

    def test_general_case_four_messages(self, cluster):
        attrs = make_file(cluster, 2, "/f")          # US=1, CSS=0, SS=2
        __, protocol, __ = open_msgs(cluster, 1, (0, attrs["ino"]))
        # US -> CSS, CSS -> SS, SS -> CSS, CSS -> US.
        assert protocol == {"fs.css_open": 1, "fs.css_open.resp": 1,
                            "fs.ss_open": 1, "fs.ss_open.resp": 1}


class TestReadWriteCloseProtocols:
    def test_network_read_is_two_messages_per_page(self, cluster):
        attrs = make_file(cluster, 2, "/f", b"y" * 100)
        handle, __, __ = open_msgs(cluster, 1, (0, attrs["ino"]))
        fs = cluster.site(1).fs
        win = StatsWindow(cluster.stats)
        data = cluster.call(1, fs.read(handle, 0, 100))
        snap = win.close()
        assert data == b"y" * 100
        assert snap.sent["fs.read_page"] == 1
        assert snap.sent["fs.read_page.resp"] == 1

    def test_cached_page_rereads_are_free(self, cluster):
        attrs = make_file(cluster, 2, "/f", b"y" * 100)
        handle, __, __ = open_msgs(cluster, 1, (0, attrs["ino"]))
        fs = cluster.site(1).fs
        cluster.call(1, fs.read(handle, 0, 100))
        win = StatsWindow(cluster.stats)
        cluster.call(1, fs.read(handle, 0, 100))
        assert win.close().total_messages == 0

    def test_write_is_one_oneway_message_per_page(self, cluster):
        attrs = make_file(cluster, 2, "/f", b"a" * 10)
        handle, __, __ = open_msgs(cluster, 1, (0, attrs["ino"]),
                                   Mode.WRITE)
        fs = cluster.site(1).fs
        win = StatsWindow(cluster.stats)
        cluster.call(1, fs.write(handle, 0, b"b" * 10))
        snap = win.close()
        assert snap.sent["fs.write_page"] == 1
        assert "fs.write_page.resp" not in snap.sent

    def test_remote_close_four_message_chain(self, cluster):
        """US -> SS, SS -> CSS, CSS -> SS, SS -> US (the race-fix protocol
        of section 2.3.3 footnote)."""
        attrs = make_file(cluster, 2, "/f")
        handle, __, __ = open_msgs(cluster, 1, (0, attrs["ino"]))
        fs = cluster.site(1).fs
        win = StatsWindow(cluster.stats)
        cluster.call(1, fs.close(handle))
        snap = win.close()
        assert snap.sent == {"fs.close": 1, "fs.css_ss_close": 1,
                             "fs.css_ss_close.resp": 1, "fs.close.resp": 1}

    def test_remote_write_read_back_transparent(self, cluster):
        sh0 = cluster.shell(0)
        sh0.setcopies(1)
        sh0.write_file("/shared", b"from site 0")
        sh2 = cluster.shell(2)
        assert sh2.read_file("/shared") == b"from site 0"
        fd = sh2.open("/shared", "w", trunc=True)
        sh2.write(fd, b"rewritten remotely")
        sh2.close(fd)
        assert sh0.read_file("/shared") == b"rewritten remotely"


class TestSynchronization:
    def test_single_open_for_modification_policy(self, cluster):
        sh0, sh1 = cluster.shell(0), cluster.shell(1)
        sh0.write_file("/lock", b"x")
        fd = sh0.open("/lock", "w")
        with pytest.raises(EBUSY):
            sh1.open("/lock", "w")
        sh0.close(fd)
        fd2 = sh1.open("/lock", "w")   # free again after close
        sh1.close(fd2)

    def test_concurrent_readers_allowed(self, cluster):
        sh0, sh1, sh2 = (cluster.shell(i) for i in range(3))
        sh0.write_file("/shared", b"many readers")
        fds = [s.open("/shared") for s in (sh0, sh1, sh2)]
        for s, fd in zip((sh0, sh1, sh2), fds):
            assert s.read(fd, 100) == b"many readers"
        for s, fd in zip((sh0, sh1, sh2), fds):
            s.close(fd)

    def test_reader_and_writer_share_single_ss(self, cluster):
        """Simultaneous read and modification use one storage site
        (section 2.3.6 footnote)."""
        sh0 = cluster.shell(0)
        sh0.setcopies(3)
        sh0.write_file("/rw", b"base")
        cluster.settle()
        wfd = sh0.open("/rw", "w")
        sh1 = cluster.shell(1)
        rfd = sh1.open("/rw")
        fs1 = cluster.site(1).fs
        writer_handle = None
        for h in cluster.site(0).fs.us.values():
            if h.mode.writable:
                writer_handle = h
        reader_handle = next(iter(fs1.us.values()))
        assert reader_handle.ss_site == writer_handle.ss_site
        sh1.close(rfd)
        sh0.close(wfd)

    def test_page_token_invalidation(self, cluster):
        """A write invalidates other using sites' cached copies of the page
        (section 3.2: page-valid tokens)."""
        sh0 = cluster.shell(0)
        sh0.setcopies(1)
        sh0.write_file("/tok", b"version-A")
        cluster.settle()
        # Reader at site 1 caches the page; writer at site 2 rewrites it.
        sh1, sh2 = cluster.shell(1), cluster.shell(2)
        rfd = sh1.open("/tok")
        assert sh1.read(rfd, 9) == b"version-A"
        wfd = sh2.open("/tok", "w")
        sh2.pwrite(wfd, 0, b"version-B")
        cluster.settle()
        # The reader's next read refetches the new (staged) data.
        assert sh1.pread(rfd, 0, 9) == b"version-B"
        sh2.close(wfd)
        sh1.close(rfd)


class TestReadahead:
    def test_sequential_remote_read_prefetches(self, cluster):
        psz = cluster.config.cost.page_size
        sh2 = cluster.shell(2)
        sh2.setcopies(1)
        sh2.write_file("/ra", bytes(range(256)) * (4 * psz // 256))
        cluster.settle()
        sh1 = cluster.shell(1)
        fd = sh1.open("/ra")
        sh1.read(fd, psz)            # page 0 (sequential start)
        sh1.read(fd, psz)            # page 1: triggers prefetch of page 2
        cluster.settle()
        win = StatsWindow(cluster.stats)
        sh1.read(fd, psz)            # page 2 should now be cached
        assert win.close().sent.get("fs.read_page", 0) == 0
        sh1.close(fd)

    def test_no_readahead_when_disabled(self):
        from repro import CostModel
        cluster = LocusCluster(n_sites=3, seed=3,
                               cost=CostModel(readahead=False))
        psz = cluster.config.cost.page_size
        sh2 = cluster.shell(2)
        sh2.setcopies(1)
        sh2.write_file("/ra", b"z" * (4 * psz))
        cluster.settle()
        sh1 = cluster.shell(1)
        fd = sh1.open("/ra")
        sh1.read(fd, psz)
        sh1.read(fd, psz)
        cluster.settle()
        win = StatsWindow(cluster.stats)
        sh1.read(fd, psz)
        assert win.close().sent.get("fs.read_page", 0) == 1
        sh1.close(fd)


class TestDisklessUsingSites:
    def test_diskless_site_full_access(self):
        cluster = LocusCluster(n_sites=5, seed=3, root_pack_sites=[0, 1, 2])
        sh4 = cluster.shell(4)       # no pack of the root filegroup
        sh4.mkdir("/from4")
        sh4.write_file("/from4/f", b"diskless write")
        sh0 = cluster.shell(0)
        assert sh0.read_file("/from4/f") == b"diskless write"
        # The file's storage sites exclude the diskless creator.
        assert 4 not in sh0.stat("/from4/f")["storage_sites"]
