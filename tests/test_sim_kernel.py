"""Calendar-queue kernel: determinism pin, legacy-heap parity, tombstone
accounting, and scheduling edge cases.

The simulator overhaul (calendar buckets + far heap, slab-recycled
``call_soon``, tombstone purge) must be invisible in virtual time: these
tests pin the schedule against committed golden values and against the
original single-heap kernel (``repro.sim.legacy.LegacySimulator``), which
is kept verbatim as a measuring stick.
"""

import hashlib

import pytest

from repro import LocusCluster, Mode
from repro.config import ClusterConfig, CostModel
from repro.sim import Simulator
from repro.sim.legacy import LegacySimulator
from repro.tools.inspect import cluster_report

KERNELS = [Simulator, LegacySimulator]


# -- determinism pin -------------------------------------------------------

# Golden observables for the pinned storm below, committed once from the
# pre-overhaul kernel.  Any change to these numbers is a schedule change
# and must be treated as a correctness regression, not re-pinned casually.
GOLDEN = {
    "vtime": 1271.635,
    "events": 6772,
    "messages": 1330,
    "fs_digest": "aedb8966164c528c",
}


def _pin_storm(sim_kernel="calendar", trace_enabled=False):
    """A small seeded multi-site storm touching RPC, timers, watchdogs and
    the filesystem — every scheduling primitive the kernels implement."""
    cfg = ClusterConfig(
        n_sites=4, seed=1983, root_pack_sites=[0, 1], sim_kernel=sim_kernel,
        cost=CostModel().with_overrides(trace_enabled=trace_enabled))
    cluster = LocusCluster(config=cfg)
    sim = cluster.sim
    sites = cluster.sites

    def ping(src, payload):
        yield from sites[payload["dst"]].cpu(0.2)
        return payload["n"] * 2

    for site in sites:
        site.register_handler("pin.ping", ping)
        cluster.shell(site.site_id).write_file(
            f"/pin-{site.site_id}", bytes([site.site_id]) * 48)
    cluster.settle()

    def chatter(site, lane):
        me = site.site_id
        for n in range(6):
            yield 20.0 + sim.rng.random() * 10.0
            peer = (me + lane + n) % len(sites)
            if peer == me:
                peer = (peer + 1) % len(sites)
            watchdog = sim.schedule(500.0, lambda: None)
            resp = yield from site.rpc(peer, "pin.ping",
                                       {"n": n, "dst": peer})
            watchdog.cancel()
            assert resp == n * 2

    for site in sites:
        for lane in range(25):
            cluster.spawn(site, chatter(site, lane))
    cluster.settle()

    digest = hashlib.sha256(b"".join(
        cluster.shell(s.site_id).read_file(f"/pin-{s.site_id}")
        for s in sites)).hexdigest()[:16]
    return {
        "vtime": round(sim.now, 3),
        "events": sim.events_processed,
        "messages": cluster.stats.total_messages,
        "fs_digest": digest,
    }


class TestDeterminismPin:

    def test_calendar_matches_golden(self):
        assert _pin_storm("calendar") == GOLDEN

    def test_calendar_matches_golden_with_tracing(self):
        assert _pin_storm("calendar", trace_enabled=True) == GOLDEN

    def test_legacy_heap_matches_golden(self):
        assert _pin_storm("heap") == GOLDEN


# -- kernel parity under randomized scheduling -----------------------------

def _chaos_schedule(simcls, seed):
    """Drive one kernel through a randomized storm of every scheduling
    primitive and return the full fire log (order is the contract)."""
    sim = simcls(seed=seed)
    log = []
    handles = {}
    rng = sim.rng

    def fire(tag):
        log.append((round(sim.now, 9), tag))
        r = rng.random()
        if r < 0.30:
            # Mixed magnitudes exercise buckets, far heap and rotation.
            delay = rng.choice([0.0, 0.1, 3.0, 250.0, 9e4])
            handles[tag] = sim.schedule(delay, fire, f"{tag}.s")
        elif r < 0.45:
            sim.call_soon(fire, f"{tag}.c")
        elif r < 0.55 and handles:
            victim = rng.choice(sorted(handles))
            handles.pop(victim).cancel()

    def sleeper(ident):
        for n in range(4):
            yield rng.random() * 40.0
            log.append((round(sim.now, 9), f"t{ident}.{n}"))

    for i in range(40):
        sim.schedule(rng.random() * 100.0, fire, f"e{i}")
    for i in range(20):
        sim.spawn(sleeper(i), name=f"s{i}")
    # Sliced horizons: run(until=...) must stop and restart cleanly.
    for horizon in (10.0, 10.0, 137.5, 9e4, None):
        sim.run(until=horizon)
    return log, sim.events_processed, sim._seq, sim.now


@pytest.mark.parametrize("seed", [7, 19, 1983])
def test_chaos_fire_order_parity(seed):
    new = _chaos_schedule(Simulator, seed)
    old = _chaos_schedule(LegacySimulator, seed)
    assert new == old


# -- run(max_events=...) accounting ----------------------------------------

class TestMaxEvents:

    @pytest.mark.parametrize("simcls", KERNELS)
    def test_budget_charges_processed_events_only(self, simcls):
        """Tombstone discards must not consume the event budget."""
        sim = simcls(seed=0)
        fired = []
        for i in range(1, 21):
            ev = sim.schedule(float(i), fired.append, i)
            if i % 2 == 0:
                ev.cancel()               # tombstones interleave the storm
        sim.run(max_events=5)
        assert fired == [1, 3, 5, 7, 9]
        assert sim.events_processed == 5
        sim.run(max_events=5)
        assert fired == [1, 3, 5, 7, 9, 11, 13, 15, 17, 19]

    @pytest.mark.parametrize("simcls", KERNELS)
    def test_budget_with_until(self, simcls):
        sim = simcls(seed=0)
        fired = []
        for i in range(1, 11):
            sim.schedule(float(i), fired.append, i)
        sim.run(until=100.0, max_events=3)
        assert fired == [1, 2, 3]
        sim.run(until=100.0)
        assert len(fired) == 10 and sim.now == 100.0


# -- pending() -------------------------------------------------------------

class TestPending:

    @pytest.mark.parametrize("simcls", KERNELS)
    def test_pending_excludes_tombstones(self, simcls):
        sim = simcls(seed=0)
        live = [sim.schedule(1.0 + i, lambda: None) for i in range(3)]
        dead = [sim.schedule(2.5 + i, lambda: None) for i in range(4)]
        far = [sim.schedule(1e6 + i, lambda: None) for i in range(3)]
        ready = [sim.call_soon(lambda: None) for i in range(2)]
        for ev in dead:
            ev.cancel()
        far[0].cancel()
        ready[0].cancel()
        assert sim.pending() == 3 + 2 + 1
        assert "queued=6" in repr(sim)

    def test_inspect_and_gauges_report_live_count(self):
        cluster = LocusCluster(n_sites=2, seed=5)
        sim = cluster.sim
        base = sim.pending()               # the cluster's own timers
        for i in range(5):
            ev = sim.schedule(50.0 + i, lambda: None)
            if i < 4:
                ev.cancel()
        report = cluster_report(cluster)
        assert report["events_pending"] == sim.pending() == base + 1
        gauges = cluster.sites[0].metrics.gauges()
        assert gauges["sim"]["events_pending"] == base + 1
        assert gauges["sim"]["events_processed"] == sim.events_processed


# -- calendar-structure edge cases -----------------------------------------

class TestCalendarEdges:

    def test_mass_cancel_triggers_purge(self):
        """A watchdog storm cancelling most of what it armed must still
        fire the survivors in exact time order (the purge path)."""
        sim = Simulator(seed=0)
        fired = []
        handles = [sim.schedule(10.0 + i * 0.01, fired.append, i)
                   for i in range(20000)]
        for i, h in enumerate(handles):
            if i % 10:
                h.cancel()
        sim.run()
        assert fired == list(range(0, 20000, 10))
        assert sim.pending() == 0
        assert sim._discards == 0          # the sweep really ran

    def test_far_future_rotation(self):
        """Entries far beyond the initial window come back in order when
        the window rotates out to them."""
        sim = Simulator(seed=0)
        fired = []
        times = [9e5, 1e5, 5e6, 2e4, 3e6, 2e4 + 0.5]
        for t in times:
            sim.schedule(t, fired.append, t)
        sim.run()
        assert fired == sorted(times)
        assert sim.now == max(times)

    def test_run_until_advances_idle_clock(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule(100.0, fired.append, 1)
        sim.run(until=40.0)
        assert fired == [] and sim.now == 40.0
        sim.run(until=100.0)
        assert fired == [1] and sim.now == 100.0

    def test_schedule_behind_rebased_window(self):
        """After a purge re-anchors the window at a far-future population,
        a short-delay schedule must still fire first (rebase path)."""
        sim = Simulator(seed=0)
        fired = []
        handles = [sim.schedule(5000.0 + i * 0.01, fired.append, i)
                   for i in range(8000)]
        for i, h in enumerate(handles):
            if i % 8:
                h.cancel()                 # enough discards to purge
        sim.schedule(4000.0, fired.append, "probe")
        sim.run(until=4500.0)
        assert fired == ["probe"]
        sim.run()
        assert fired[1:] == list(range(0, 8000, 8))

    def test_cancelled_call_soon_never_fires(self):
        sim = Simulator(seed=0)
        fired = []
        keep = sim.call_soon(fired.append, "keep")
        drop = sim.call_soon(fired.append, "drop")
        drop.cancel()
        drop.cancel()                      # cancel is idempotent
        sim.run()
        assert fired == ["keep"]
        assert keep.cancelled is False


# -- adaptive readahead ----------------------------------------------------

def _scan_cluster(readahead_max, batch_pages=1):
    cost = CostModel().with_overrides(
        readahead_window=1, readahead_max=readahead_max,
        batch_pages=batch_pages)
    cluster = LocusCluster(n_sites=2, seed=11, root_pack_sites=[1],
                           cost=cost)
    sh1 = cluster.shell(1)
    sh1.write_file("/big", bytes(24 * 1024))     # 24 pages, stored at 1
    cluster.settle()
    return cluster


def _read_pages(cluster, pages):
    """Read 1 byte from each listed page of /big at site 0 (remote)."""
    from repro.net.stats import StatsWindow
    site = cluster.site(0)
    sh = cluster.shell(0)
    attrs = sh.stat("/big")
    handle = cluster.call(0, site.fs.open_gfile((0, attrs["ino"]),
                                                Mode.READ))
    win = StatsWindow(cluster.stats)
    t0 = cluster.sim.now
    for p in pages:
        data = cluster.call(0, site.fs.read(handle, p * 1024, 1))
        assert len(data) == 1
    cluster.settle()
    snap = win.close()
    reads = sum(v for k, v in snap.sent.items()
                if k in ("fs.read_page", "fs.read_pages"))
    run_len = handle.run_len
    cluster.call(0, site.fs.close(handle))
    return reads, cluster.sim.now - t0, run_len


class TestAdaptiveReadahead:

    def test_sequential_scan_grows_window_to_cap(self):
        """The observed run length widens the window up to readahead_max;
        with page batching that turns into fewer, larger read messages."""
        seq = list(range(24))
        reads_flat, __, __ = _read_pages(_scan_cluster(1, batch_pages=8),
                                         seq)
        reads_adapt, __, run_len = _read_pages(
            _scan_cluster(8, batch_pages=8), seq)
        assert run_len == len(seq) - 1     # unbroken sequential run
        assert reads_adapt < reads_flat    # windows batched into messages
        # Streaming also shortens virtual time: the scan stalls once per
        # window instead of once per page.
        __, vtime_flat, __ = _read_pages(_scan_cluster(1), seq)
        __, vtime_adapt, __ = _read_pages(_scan_cluster(8), seq)
        assert vtime_adapt < vtime_flat

    def test_random_access_keeps_window_at_one(self):
        """Non-sequential access never grows a run, so the adaptive cap
        changes nothing: same messages with cap 8 as with cap 1."""
        random_pages = [0, 12, 3, 20, 7, 16, 1, 9, 22, 5]
        reads_flat, __, run_flat = _read_pages(_scan_cluster(1),
                                               random_pages)
        reads_adapt, __, run_adapt = _read_pages(_scan_cluster(8),
                                                 random_pages)
        assert run_flat == run_adapt == 0
        assert reads_adapt == reads_flat
