"""Negative-path coverage for the invariant audit (T19 satellite).

The fuzz oracle is only as good as its checkers, so each checker is fed a
*hand-forged* corrupt store — a healthy settled cluster whose packs are
then mutilated directly — and must flag exactly the planted corruption.
A green run on a corrupt store would mean the fuzzer's verdicts are
vacuous.
"""

from __future__ import annotations

import pytest

from repro.faults.invariants import InvariantChecker
from repro.fuzz.oracle import FuzzOracle, SyntheticOracle
from repro.fuzz.plan import FuzzPlan
from repro.fuzz.runner import PlanRunner
from repro.storage.inode import DiskInode, FileType


@pytest.fixture
def run():
    """A settled 3-site cluster (3 data copies, one regular file under
    /w/d0/f0) with a clean audit — the canvas the tests corrupt."""
    plan = FuzzPlan(seed=5, name="forge", n_sites=3, copies=3,
                    tree_dirs=1, tree_files=1, file_size=64)
    fuzz_run = PlanRunner(plan).run()
    assert InvariantChecker(fuzz_run.cluster, plan).check() == []
    return fuzz_run


def kinds(run):
    return sorted({v.kind for v in
                   InvariantChecker(run.cluster, run.plan).check()})


def data_packs(cluster):
    """{site_id: pack} plus the (gfs, ino) of the one regular file."""
    mount = cluster.sites[0].fs.mount
    for gfs in sorted(mount.groups):
        packs = {site_id: cluster.site(site_id).packs[gfs]
                 for site_id in mount.pack_sites(gfs)
                 if gfs in cluster.site(site_id).packs}
        for ino, inode in sorted(packs[min(packs)].inodes.items()):
            if inode.ftype == FileType.REGULAR and not inode.deleted:
                return packs, gfs, ino
    raise AssertionError("no regular file found")


# -- replica divergence ----------------------------------------------------

def test_stale_copy_is_replica_divergence(run):
    """A dominated (stale, non-conflicting) copy after settle means
    propagation silently failed — stricter than fsck's conflict check."""
    packs, gfs, ino = data_packs(run.cluster)
    inode = packs[0].inodes[ino]
    inode.version = inode.version.bump(0)
    found = kinds(run)
    assert "replica_divergence" in found
    assert "fsck:unflagged_conflicts" not in found   # dominated, not torn


def test_concurrent_versions_are_unflagged_conflict(run):
    """Two copies bumped by different sites are *incomparable*: fsck must
    flag the missed conflict and the divergence check fires too."""
    packs, gfs, ino = data_packs(run.cluster)
    packs[0].inodes[ino].version = packs[0].inodes[ino].version.bump(0)
    packs[1].inodes[ino].version = packs[1].inodes[ino].version.bump(1)
    found = kinds(run)
    assert "fsck:unflagged_conflicts" in found
    assert "replica_divergence" in found


def test_conflict_flag_suppresses_divergence(run):
    """A divergent copy already *flagged* conflicted is a known, reported
    conflict — not a silent divergence."""
    packs, gfs, ino = data_packs(run.cluster)
    inode = packs[0].inodes[ino]
    inode.version = inode.version.bump(0)
    inode.conflict = True
    assert "replica_divergence" not in kinds(run)


# -- fsck categories -------------------------------------------------------

def test_forged_nlink_mismatch(run):
    packs, gfs, ino = data_packs(run.cluster)
    for pack in packs.values():
        pack.inodes[ino].nlink = 5
    assert "fsck:nlink_errors" in kinds(run)


def test_forged_dangling_entry(run):
    """Deleting a file's descriptor from every pack leaves its directory
    entry pointing at nothing."""
    packs, gfs, ino = data_packs(run.cluster)
    for pack in packs.values():
        del pack.inodes[ino]
    assert "fsck:dangling_entries" in kinds(run)


def test_forged_content_skew_is_fsck_content_mismatch(run):
    """Equal version vectors, different committed bytes: fsck's content
    audit (scrub subsystem satellite) must flag what vv comparison cannot
    see."""
    packs, gfs, ino = data_packs(run.cluster)
    inode = packs[0].inodes[ino]
    blockno = inode.pages[0]
    packs[0].blocks[blockno] = bytes(
        b ^ 0xFF for b in packs[0].blocks[blockno])
    found = kinds(run)
    assert "fsck:content_mismatch" in found
    assert "replica_divergence" not in found   # vvs still equal


def test_forged_missing_advertised_copy_is_placement_error(run):
    """An inode advertising a storage site that holds no data: the
    placement audit reports the site and the expected-vs-actual sets."""
    packs, gfs, ino = data_packs(run.cluster)
    packs[0].inodes[ino].has_data = False
    assert "fsck:placement_errors" in kinds(run)
    from repro.tools.fsck import fsck
    report = fsck(run.cluster)
    (gfile, detail), = report.placement_errors
    assert gfile == (gfs, ino)
    assert "site 0" in detail and "advertised" in detail


def test_forged_orphan_reported_but_not_audited_by_default(run):
    """An inode no directory references: the checker reports it, but the
    default oracle audit excludes it (transient orphans are normal in
    crash windows; fsck_repair scrubs them)."""
    packs, gfs, ino = data_packs(run.cluster)
    orphan_ino = max(max(p.inodes) for p in packs.values()) + 1
    for pack in packs.values():
        pack.inodes[orphan_ino] = DiskInode(
            ino=orphan_ino, ftype=FileType.REGULAR, size=0,
            storage_sites=sorted(packs))
    assert "fsck:orphan_inodes" in kinds(run)
    judged = {v.kind for v in FuzzOracle().judge(run).violations}
    assert "fsck:orphan_inodes" not in judged


# -- exactly-once ledger audit ---------------------------------------------

def test_forged_ledger_entry_without_apply(run):
    """A memoized reply for an op that never executed here would silently
    swallow a real mutation on retry — the audit must flag the forgery."""
    from repro.fs.ledger import IdempotencyLedger
    packs, gfs, ino = data_packs(run.cluster)
    pack = packs[min(packs)]
    if pack.ledger is None:
        pack.ledger = IdempotencyLedger()
    pack.ledger.commit(0, 424242, "forged reply")
    assert "ledger:entry_without_apply" in kinds(run)


def test_forged_double_apply(run):
    """The same stamp executed twice against one pack is the exact failure
    the ledger exists to prevent."""
    packs, gfs, ino = data_packs(run.cluster)
    pack = packs[min(packs)]
    existing = next(iter(pack.applied_ops), None)
    key = existing if existing is not None else (0, 7)
    pack.applied_ops[key] = 2
    assert "ledger:double_apply" in kinds(run)


# -- byte convergence (oracle-only check) ----------------------------------

def test_forged_data_divergence_behind_equal_versions(run):
    """Equal version vectors but different bytes: invisible to vv
    comparison, caught only by the oracle's byte-convergence check."""
    packs, gfs, ino = data_packs(run.cluster)
    inode = packs[0].inodes[ino]
    blockno = inode.pages[0]
    original = packs[0].blocks[blockno]
    packs[0].blocks[blockno] = bytes(b ^ 0xFF for b in original)
    assert "replica_divergence" not in kinds(run)   # vvs still equal
    judged = {v.kind for v in FuzzOracle().judge(run).violations}
    assert "data_divergence" in judged


# -- synthetic oracle ------------------------------------------------------

def test_synthetic_oracle_needs_the_conjunction(run):
    """No successful rename and no crash fired: the planted bug stays
    dormant on this quiet run."""
    result = SyntheticOracle().judge(run)
    assert result.ok
