"""Recovery manager internals: mail plumbing, merge-manager fallback,
demand recovery hooks, and statistics."""

import pytest

from repro import FileType, LocusCluster
from repro.errors import ECONFLICT


@pytest.fixture
def cluster():
    return LocusCluster(n_sites=3, seed=91)


class TestMail:
    def test_send_and_read(self, cluster):
        rec = cluster.site(0).recovery
        cluster.call(0, rec.send_mail("dave", "greetings", "hello dave"))
        cluster.call(0, rec.send_mail("dave", "again", "more mail"))
        mail = cluster.call(0, rec.read_mail("dave"))
        assert [m.subject for m in mail] == ["greetings", "again"]
        assert all(m.sender == "recovery-daemon" for m in mail)

    def test_read_mail_for_unknown_user_empty(self, cluster):
        rec = cluster.site(0).recovery
        assert cluster.call(0, rec.read_mail("nobody")) == []

    def test_mailbox_file_is_typed(self, cluster):
        rec = cluster.site(0).recovery
        cluster.call(0, rec.send_mail("erin", "s", "b"))
        sh = cluster.shell(0)
        assert sh.stat("/mail/erin")["ftype"] is FileType.MAILBOX

    def test_mail_from_any_site_lands_in_one_box(self, cluster):
        cluster.shell(0).setcopies(3)
        cluster.shell(0).mkdir("/mail")
        for s in range(3):
            cluster.call(s, cluster.site(s).recovery.send_mail(
                "frank", f"from-{s}", "x"))
        cluster.settle()
        mail = cluster.call(1, cluster.site(1).recovery.read_mail("frank"))
        assert {m.subject for m in mail} == {"from-0", "from-1", "from-2"}


class TestMergeManagerFallback:
    def _conflicted_db(self, cluster, manager=None):
        if manager is not None:
            for s in range(3):
                cluster.site(s).recovery.register_merge_manager(
                    FileType.DATABASE, manager)
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        fs0 = cluster.site(0).fs
        cluster.call(0, fs0.create_file(sh0.proc, "/db",
                                        ftype=FileType.DATABASE,
                                        storage_sites=[0, 1, 2]))
        sh0.write_file("/db", b"base")
        cluster.settle()
        cluster.partition({0, 1}, {2})
        sh0.write_file("/db", b"left")
        sh2.write_file("/db", b"right")
        cluster.heal()
        cluster.settle()
        return sh0

    def test_manager_declining_falls_back_to_conflict_mark(self, cluster):
        """Section 4.3: if the merge manager cannot reconcile, the problem
        is reported to the user level."""
        sh = self._conflicted_db(cluster, manager=lambda copies: None)
        with pytest.raises(ECONFLICT):
            sh.open("/db")
        assert cluster.site(0).recovery.stats.conflicts_marked == 1

    def test_no_manager_marks_conflict(self, cluster):
        sh = self._conflicted_db(cluster, manager=None)
        with pytest.raises(ECONFLICT):
            sh.open("/db")

    def test_manager_merge_counts(self, cluster):
        sh = self._conflicted_db(
            cluster, manager=lambda copies: b"|".join(
                sorted({c for __, __, c in copies})))
        assert sh.read_file("/db") == b"left|right"
        assert cluster.site(0).recovery.stats.type_manager_merges == 1


class TestDemandRecovery:
    def test_needs_and_pending_bookkeeping(self, cluster):
        rec = cluster.site(0).recovery
        assert not rec.needs((0, 99))
        rec.pending[0] = {99}
        assert rec.needs((0, 99))
        rec.pending[0].discard(99)
        assert not rec.needs((0, 99))

    def test_stats_accumulate_across_merges(self, cluster):
        sh0, sh2 = cluster.shell(0), cluster.shell(2)
        sh0.setcopies(3)
        sh0.write_file("/w", b"v1")
        cluster.settle()
        for round_no in range(2):
            cluster.partition({0, 1}, {2})
            sh0.write_file("/w", f"round {round_no}".encode())
            cluster.heal()
            cluster.settle()
        stats = cluster.site(0).recovery.stats
        assert stats.files_examined >= 2
        assert stats.propagations_scheduled >= 2
        assert cluster.shell(2).read_file("/w") == b"round 1"
