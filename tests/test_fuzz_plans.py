"""Unit coverage for the fuzz plan format and the seeded generator (T19).

Everything here is structural — no cluster is spun up — so these tests
pin the *contract* the soak loop and the regression corpus rely on:
plans are canonical JSON, generation is a pure function of the seed, and
generated storms always end with the cluster whole.
"""

import pytest

from repro.fuzz.generate import generate_plan
from repro.fuzz.plan import OPS, FuzzPlan, WorkloadOp, payload


# -- plan format -----------------------------------------------------------

def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        WorkloadOp(at=0.0, site=0, op="truncate", path="/w/x")


def test_payload_is_deterministic():
    assert payload(12, 9, 64) == payload(12, 9, 64)
    assert len(payload(12, 9, 2048)) == 2048
    assert payload(12, 9, 64) != payload(12, 10, 64)
    assert payload(12, 9, 64) != payload(13, 9, 64)


def test_plan_round_trips_canonically():
    plan = generate_plan(42, n_ops=12, n_faults=4)
    text = plan.to_json()
    assert FuzzPlan.from_json(text).to_json() == text


def test_replace_does_not_alias_event_lists():
    plan = generate_plan(42, n_ops=12, n_faults=4)
    clone = plan.replace()
    clone.ops[0].path = "/w/elsewhere"
    del clone.faults[0]
    assert plan.ops[0].path != "/w/elsewhere"
    assert len(plan.faults) == 4 or plan.faults is not clone.faults


def test_span_and_event_count():
    plan = FuzzPlan(ops=[WorkloadOp(at=5.0, site=0, op="read",
                                    path="/w/d0/f0")])
    assert plan.span() == 5.0
    assert plan.event_count() == 1
    assert FuzzPlan().span() == 0.0


# -- generator -------------------------------------------------------------

def test_generation_is_a_pure_function_of_the_seed():
    first = generate_plan(7, n_ops=30, n_faults=6).to_json()
    second = generate_plan(7, n_ops=30, n_faults=6).to_json()
    assert first == second
    assert generate_plan(8, n_ops=30, n_faults=6).to_json() != first


def test_requested_op_count_is_honored():
    plan = generate_plan(7, n_ops=30, n_faults=6)
    assert len(plan.ops) == 30
    assert all(op.op in OPS for op in plan.ops)
    assert len(plan.faults) >= 6


@pytest.mark.parametrize("seed", range(40, 60))
def test_storms_always_end_whole(seed):
    """Crash/restart and partition/heal come in pairs with the down
    window strictly inside the schedule, so the end-of-run audit always
    judges a merged store (the paper's section 4 claim)."""
    plan = generate_plan(seed, n_ops=20, n_faults=8)
    crashes = [e for e in plan.faults if e.kind == "crash"]
    restarts = {e.site: e for e in plan.faults if e.kind == "restart"}
    for crash in crashes:
        assert crash.site in restarts
        assert restarts[crash.site].at > crash.at
        assert restarts[crash.site].merge
    splits = [e for e in plan.faults if e.kind == "partition"]
    heals = [e for e in plan.faults if e.kind == "heal"]
    assert len(splits) <= 1
    assert len(heals) == len(splits)
    for split, heal in zip(splits, heals):
        assert heal.at > split.at
        flat = sorted(s for group in split.groups for s in group)
        assert flat == list(range(plan.n_sites))


@pytest.mark.parametrize("seed", range(40, 60))
def test_clients_never_crash(seed):
    """Workload ops only issue from sites the fault schedule never takes
    down — the drivers must survive the storm they are measuring."""
    plan = generate_plan(seed, n_ops=20, n_faults=8)
    crashed = {e.site for e in plan.faults if e.kind == "crash"}
    assert not ({op.site for op in plan.ops} & crashed)
