"""Property tests for the auto-shrinker (T19).

Most tests drive :class:`repro.fuzz.shrink.Shrinker` with *synthetic*
predicates — pure functions of the plan's structure — so minimality,
determinism and strategy escalation are checked without spinning up a
cluster for every candidate.  The final tests run the real pipeline
end-to-end against :class:`SyntheticOracle` (the deliberately planted
op/fault-conjunction bug) and pin the shrunk output byte-for-byte to the
JSON committed under ``tests/data/``.
"""

import pathlib

import pytest

from repro.faults.plan import FaultEvent
from repro.fuzz.generate import generate_plan
from repro.fuzz.oracle import SyntheticOracle
from repro.fuzz.plan import FuzzPlan, WorkloadOp
from repro.fuzz.runner import run_plan
from repro.fuzz.shrink import Shrinker, shrink_failing_result, shrink_plan

DATA = pathlib.Path(__file__).parent / "data"


def make_plan(n_ops=16, n_faults=4):
    """A hand-built plan with exactly one rename op and one crash fault
    buried in filler, so predicates have a known minimum to converge on."""
    ops = [WorkloadOp(at=10.0 * i, site=0,
                      op="write" if i % 2 else "read",
                      path=f"/w/d0/f{i % 2}", size=64, tag=i)
           for i in range(n_ops)]
    ops[n_ops // 2] = WorkloadOp(at=10.0 * (n_ops // 2), site=0,
                                 op="rename", path="/w/d0/f0",
                                 dest="/w/d0/r0")
    faults = [FaultEvent(kind="latency_spike", at=200.0 + 10.0 * i,
                         delta=5.0, duration=5.0)
              for i in range(n_faults)]
    faults[n_faults // 2] = FaultEvent(kind="crash", at=220.0, site=1)
    return FuzzPlan(seed=1, name="synthetic", ops=ops, faults=faults)


def conjunction(plan):
    """Fails iff the plan still contains a rename op AND a crash fault."""
    return (any(op.op == "rename" for op in plan.ops)
            and any(ev.kind == "crash" for ev in plan.faults))


# -- minimality ------------------------------------------------------------

def test_converges_to_known_minimum():
    plan = make_plan()
    outcome = shrink_plan(plan, conjunction)
    assert outcome.plan.event_count() == 2
    assert [op.op for op in outcome.plan.ops] == ["rename"]
    assert [ev.kind for ev in outcome.plan.faults] == ["crash"]


def test_shrunk_plan_still_fails_predicate():
    outcome = shrink_plan(make_plan(), conjunction)
    assert conjunction(outcome.plan)


def test_shrunk_plan_is_renamed():
    outcome = shrink_plan(make_plan(), conjunction)
    assert outcome.plan.name == "synthetic-shrunk"


# -- determinism -----------------------------------------------------------

def test_shrink_is_deterministic():
    """Same failing plan + same predicate ⇒ byte-identical minimal plan
    and the exact same number of predicate runs."""
    first = shrink_plan(make_plan(), conjunction)
    second = shrink_plan(make_plan(), conjunction)
    assert first.plan.to_json() == second.plan.to_json()
    assert first.attempts == second.attempts


def test_predicate_runs_are_memoized():
    calls = []

    def counting(plan):
        calls.append(plan.to_json())
        return conjunction(plan)

    shrink_plan(make_plan(), counting)
    assert len(calls) == len(set(calls)), "a candidate was re-run"


# -- strategy escalation ---------------------------------------------------

def test_escalates_when_halving_cannot_reproduce():
    """A bug needing the first and last op of the timeline defeats
    bisection (each half lacks one end), forcing escalation to ddmin."""
    plan = make_plan()
    first_tag, last_tag = plan.ops[0].tag, plan.ops[-1].tag

    def needs_both_ends(candidate):
        tags = {op.tag for op in candidate.ops}
        return first_tag in tags and last_tag in tags

    outcome = shrink_plan(plan, needs_both_ends)
    assert "halves" in outcome.escalations
    assert {op.tag for op in outcome.plan.ops} == {first_tag, last_tag}
    assert outcome.plan.faults == []


def test_simplify_shrinks_tree_and_times():
    plan = make_plan()
    plan.tree_dirs = plan.tree_files = 3
    plan.file_size = 1024
    outcome = shrink_plan(plan, conjunction)
    assert outcome.plan.tree_dirs == 1
    assert outcome.plan.tree_files == 1
    assert outcome.plan.file_size == 64
    assert outcome.plan.span() == 0.0


# -- guard rails -----------------------------------------------------------

def test_green_plan_raises():
    with pytest.raises(ValueError):
        shrink_plan(make_plan(), lambda plan: False)


def test_budget_caps_predicate_runs():
    shrinker = Shrinker(conjunction, max_attempts=5)
    outcome = shrinker.shrink(make_plan())
    assert outcome.attempts <= 5
    assert conjunction(outcome.plan)   # never hands back a green plan


# -- end-to-end demo: the planted SyntheticOracle bug ----------------------

def test_synthetic_demo_shrinks_to_committed_plan():
    """The acceptance demo: a planted op/fault-conjunction bug found from
    a random seed shrinks to <= 10 events, byte-identical to the JSON
    committed under tests/data/."""
    result = run_plan(generate_plan(100, n_ops=10, n_faults=4, span=400.0),
                      oracle=SyntheticOracle())
    assert not result.ok
    assert {v.kind for v in result.violations} == {"synthetic:conjunction"}

    outcome = shrink_failing_result(result, oracle=SyntheticOracle(),
                                    max_attempts=80)
    assert outcome.plan.event_count() <= 10
    committed = (DATA / "synthetic-conjunction-shrunk.json").read_text()
    assert outcome.plan.to_json() == committed


def test_committed_synthetic_plan_reproduces():
    plan = FuzzPlan.from_json(
        (DATA / "synthetic-conjunction-shrunk.json").read_text())
    result = run_plan(plan, oracle=SyntheticOracle())
    assert {v.kind for v in result.violations} == {"synthetic:conjunction"}
