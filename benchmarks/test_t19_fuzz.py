"""T19 — chaos-fuzzer throughput and shrink efficiency.

Like T18, the reproduced quantity is partly *wall-clock* (scenarios/sec
through the generate → run → judge loop) and partly structural: the
fuzzer's value rests on two deterministic claims that are asserted, not
measured —

* same seed ⇒ byte-identical plan JSON and identical run digest, so any
  soak failure is replayable from its seed alone;
* the shrinker converges: a planted op/fault-conjunction bug in a
  generated storm reduces to its 2-event minimum, and the reduction
  ratio on the committed regression corpus is recorded.

Run ``python benchmarks/test_t19_fuzz.py`` to regenerate BENCH_fuzz.json
(a larger seed batch; a few minutes).  The pytest entry points run a
reduced batch.
"""

import json
import sys
import time

import pytest

from repro.fuzz.generate import generate_plan
from repro.fuzz.oracle import SyntheticOracle
from repro.fuzz.runner import PlanRunner, run_plan
from repro.fuzz.shrink import shrink_failing_result
from _harness import print_table, run_experiment

# Full batch (BENCH_fuzz.json, __main__ only) — the open-findings
# ledger: the same 30 seeds the nightly CI gate replays.
FULL = dict(seeds=range(1, 31), n_ops=40, n_faults=8)
# Reduced batch for the pytest smoke run.
SMOKE = dict(seeds=range(11, 15), n_ops=20, n_faults=4)


def _fuzz_batch(seeds, n_ops, n_faults):
    """Run one seed batch through generate → run → judge; wall-clock
    throughput plus the failure census."""
    started = time.perf_counter()
    runs = ops = fault_events = 0
    failed = {}
    for seed in seeds:
        result = run_plan(generate_plan(seed, n_ops=n_ops,
                                        n_faults=n_faults))
        runs += 1
        ops += len(result.run.oplog)
        fault_events += len(result.run.injector.trace)
        if not result.ok:
            failed[seed] = sorted({v.kind for v in result.violations})
    wall = time.perf_counter() - started
    return {
        "runs": runs, "ops": ops, "fault_events": fault_events,
        "wall_s": round(wall, 2),
        "scenarios_per_sec": round(runs / wall, 3),
        "ops_per_sec": round(ops / wall, 1),
        "fail_rate": round(len(failed) / runs, 3),
        "failed_seeds": failed,
    }


def _determinism(seed, n_ops, n_faults):
    """The replayability claim: plan JSON and run digest are pure
    functions of the seed."""
    plans = {generate_plan(seed, n_ops=n_ops, n_faults=n_faults).to_json()
             for __ in range(2)}
    digests = {PlanRunner(generate_plan(seed, n_ops=n_ops,
                                        n_faults=n_faults)).run().digest()
               for __ in range(2)}
    return {"plan_stable": len(plans) == 1,
            "digest_stable": len(digests) == 1}


def _shrink_demo():
    """The planted SyntheticOracle bug: generated storm → 2-event
    minimum, with the predicate-run budget actually spent."""
    result = run_plan(generate_plan(100, n_ops=10, n_faults=4, span=400.0),
                      oracle=SyntheticOracle())
    assert not result.ok
    started = time.perf_counter()
    outcome = shrink_failing_result(result, oracle=SyntheticOracle(),
                                    max_attempts=80)
    wall = time.perf_counter() - started
    before = result.plan.event_count()
    after = outcome.plan.event_count()
    return {"events_before": before, "events_after": after,
            "reduction": round(before / after, 2),
            "predicate_runs": outcome.attempts,
            "wall_s": round(wall, 2)}


def _scrub_overhead():
    """What the anti-entropy scrub costs: the same divergence-then-heal
    scenario with the flag on and off, compared on virtual time and
    message count.  Fault-free traffic is identical by construction (the
    sweep only triggers from the merge procedure), so the interesting
    number is the per-heal overhead of the digest rounds."""
    from repro import LocusCluster
    from repro.config import CostModel

    out = {}
    for flag in (True, False):
        cluster = LocusCluster(
            n_sites=3, seed=19,
            cost=CostModel().with_overrides(scrub_enabled=flag))
        sh = cluster.shell(0)
        sh.setcopies(3)
        for i in range(8):
            sh.write_file(f"/f{i}", bytes([i]) * 600)
        cluster.settle()
        faultfree = {"vtime": cluster.sim.now,
                     "messages": cluster.net.stats.total_messages}
        cluster.partition({0}, {1, 2})
        for i in range(8):
            sh.write_file(f"/f{i}", bytes([i + 100]) * 900)
        cluster.heal()
        cluster.settle()
        out["on" if flag else "off"] = {
            "fault_free": faultfree,
            "after_heal": {"vtime": cluster.sim.now,
                           "messages": cluster.net.stats.total_messages},
            "scrub_msgs": sum(n for k, n in cluster.net.stats.sent.items()
                              if k.startswith("fs.scrub_digest")),
        }
    on, off = out["on"], out["off"]
    out["fault_free_parity"] = on["fault_free"] == off["fault_free"]
    out["heal_overhead"] = {
        "messages": on["after_heal"]["messages"]
        - off["after_heal"]["messages"],
        "vtime": round(on["after_heal"]["vtime"]
                       - off["after_heal"]["vtime"], 1),
    }
    return out


def _experiment(scale):
    batch = _fuzz_batch(**scale)
    det = _determinism(next(iter(scale["seeds"])),
                       scale["n_ops"], scale["n_faults"])
    shrink = _shrink_demo()
    scrub = _scrub_overhead()
    return {"batch": batch, "determinism": det, "shrink": shrink,
            "scrub_overhead": scrub}


# -- pytest entry points ---------------------------------------------------

@pytest.mark.benchmark(group="T19")
def test_t19_fuzz_throughput(benchmark):
    out = run_experiment(benchmark, lambda: _fuzz_batch(**SMOKE))
    print_table("T19 fuzz throughput (smoke batch)",
                ["runs", "ops", "faults", "scen/s", "fail rate"],
                [[out["runs"], out["ops"], out["fault_events"],
                  out["scenarios_per_sec"], out["fail_rate"]]])
    assert out["runs"] == len(list(SMOKE["seeds"]))
    assert out["ops"] > 0 and out["fault_events"] > 0


@pytest.mark.benchmark(group="T19")
def test_t19_seed_determinism(benchmark):
    out = run_experiment(
        benchmark, lambda: _determinism(11, SMOKE["n_ops"],
                                        SMOKE["n_faults"]))
    assert out["plan_stable"] and out["digest_stable"]


@pytest.mark.benchmark(group="T19")
def test_t19_shrink_efficiency(benchmark):
    out = run_experiment(benchmark, _shrink_demo)
    print_table("T19 shrink efficiency (planted bug)",
                ["before", "after", "reduction", "runs"],
                [[out["events_before"], out["events_after"],
                  out["reduction"], out["predicate_runs"]]])
    assert out["events_after"] <= 10
    assert out["reduction"] >= 5.0


@pytest.mark.benchmark(group="T19")
def test_t19_scrub_overhead(benchmark):
    out = run_experiment(benchmark, _scrub_overhead)
    print_table("T19 scrub overhead (divergence + heal)",
                ["ff parity", "heal msgs", "heal vtime", "digest msgs"],
                [[out["fault_free_parity"],
                  out["heal_overhead"]["messages"],
                  out["heal_overhead"]["vtime"],
                  out["on"]["scrub_msgs"]]])
    assert out["fault_free_parity"], \
        "scrub_enabled changed fault-free traffic"
    assert out["on"]["scrub_msgs"] > 0      # the sweep actually ran
    assert out["off"]["scrub_msgs"] == 0


if __name__ == "__main__":
    out = _experiment(FULL)
    baseline = {
        "experiment": "T19 chaos-fuzzer throughput and shrink efficiency",
        "batch": out["batch"],
        "determinism": out["determinism"],
        "shrink": out["shrink"],
        "scrub_overhead": out["scrub_overhead"],
    }
    with open("BENCH_fuzz.json", "w") as fh:
        json.dump(baseline, fh, indent=2, default=str)
        fh.write("\n")
    json.dump(baseline, sys.stdout, indent=2, default=str)
    print()
