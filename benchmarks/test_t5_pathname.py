"""T5 — section 2.3.4 pathname searching and the section 2.2.1 argument for
highly replicated directories near the root.

Series: pathname resolution cost vs depth, with (a) every directory local,
(b) every directory stored remotely, and (c) remote directories but a
replicated root level — showing why "the root directories [are] highly
replicated, thus improving availability and performance simultaneously".
"""

import pytest

from repro import LocusCluster
from _harness import print_table, run_experiment

MAX_DEPTH = 6


def _deep_path(depth):
    return "/" + "/".join(f"d{i}" for i in range(depth))


def _build(cluster, owner_site, copies):
    sh = cluster.shell(owner_site)
    sh.setcopies(copies)
    path = ""
    for i in range(MAX_DEPTH):
        path += f"/d{i}"
        sh.mkdir(path)
    sh.write_file(path + "/leaf", b"payload")
    cluster.settle()
    return sh


def _resolve_cost(cluster, us, path):
    fs = cluster.site(us).fs
    t0 = cluster.sim.now
    cluster.call(us, fs.resolve_gfile(None, path))
    return cluster.sim.now - t0


def _experiment():
    rows = []
    # (a) all directories local to the resolving site.
    local = LocusCluster(n_sites=2, seed=7)
    _build(local, 0, copies=1)
    # (b) all directories at the other site only.
    remote = LocusCluster(n_sites=2, seed=7, root_pack_sites=[1])
    _build(remote, 1, copies=1)
    for depth in range(1, MAX_DEPTH + 1):
        path = _deep_path(depth)
        rows.append([
            depth,
            _resolve_cost(local, 0, path),
            _resolve_cost(remote, 0, path),
        ])
    return {"rows": rows}


@pytest.mark.benchmark(group="T5")
def test_t5_pathname_search_cost(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T5: pathname resolution vtime vs depth",
        ["depth", "all-local dirs", "all-remote dirs"],
        out["rows"])
    local = [row[1] for row in out["rows"]]
    remote = [row[2] for row in out["rows"]]
    # Cost grows with depth in both cases (one directory interrogation per
    # component)...
    assert local[-1] > local[0]
    assert remote[-1] > remote[0]
    # ...but remote interrogation pays network messages per component:
    # each added remote component costs far more than a local one.
    local_slope = (local[-1] - local[0]) / (MAX_DEPTH - 1)
    remote_slope = (remote[-1] - remote[0]) / (MAX_DEPTH - 1)
    assert remote_slope > 4 * local_slope, (local_slope, remote_slope)
