"""T18 — simulator-core throughput: the calendar-queue kernel vs the
original global-heap kernel on the same million-event storm.

Unlike T1–T17, the reproduced quantity here is *wall-clock* events/sec:
the virtual-time results must be byte-identical between kernels (that is
asserted, not measured), and the benchmark records how much faster the
calendar-queue kernel turns the same schedule.

Two workloads:

**Kernel storm** (raw scheduler primitives, no cluster) — three phases
built to exercise every structure the overhaul touched:

1. *Arm flood*: a large population of long-horizon maintenance timers
   (lease expiries, retransmit watchdogs) plus heartbeat tasks.  These sit
   pending through the whole storm — the backdrop that makes every
   old-kernel heap operation pay a deep Python-level ``__lt__`` sift.
2. *Cascade storm*: chains of zero-delay ``call_soon`` wakeups re-armed
   every virtual second — the RPC-completion shape that dominates protocol
   runs.  The calendar kernel rides the ready deque with recycled events;
   the old kernel pays a full-depth sift against the armed backdrop for
   every single event.
3. *Expiry flood*: most watchdogs are cancelled (their operations
   completed), the rest expire.  The old kernel heappops every tombstone
   individually; the calendar kernel compacts them in one linear purge.

**Cluster storm** (12 sites, RPC chatter + heartbeats + filesystem
traffic) — the end-to-end sanity check: message counts, per-site cpu and
the filesystem digest must match across kernels exactly, with tracing on
or off.

Run ``python benchmarks/test_t18_simcore.py`` to regenerate
BENCH_simcore.json (full scale, several minutes on the legacy side).
The pytest entry points run a reduced scale.
"""

import gc
import hashlib
import json
import sys
import time

import pytest

from repro import LocusCluster
from repro.config import ClusterConfig, CostModel
from repro.sim.legacy import LegacySimulator
from repro.sim.simulator import Simulator
from _harness import Measure, print_table, run_experiment

# Full-scale storm (BENCH_simcore.json, __main__ only).
FULL = dict(n_timers=1_500_000, n_tasks=2000, n_chains=40, links=500,
            t_storm=50.0, stride=10)
# Reduced scale for the pytest smoke/parity runs.
SMOKE = dict(n_timers=150_000, n_tasks=500, n_chains=40, links=100,
             t_storm=25.0, stride=10)
TINY = dict(n_timers=20_000, n_tasks=200, n_chains=20, links=50,
            t_storm=10.0, stride=10)

N_SITES = 12
TASKS_PER_SITE = 250
ROUNDS = 12
HEARTBEATS = 400


# -- kernel storm ----------------------------------------------------------

def _lease_expire(ledger):
    ledger[0] += 1


class _Chain:
    """A debounced wakeup chain: every link is a zero-delay call_soon pair
    (the work item and its flush), the shape of an RPC completion burst."""

    __slots__ = ("sim", "left", "fired")

    def __init__(self, sim):
        self.sim = sim
        self.left = 0
        self.fired = 0

    def fire(self):
        self.fired += 1
        sim = self.sim
        sim.call_soon(self.flush)
        left = self.left
        if left:
            self.left = left - 1
            sim.call_soon(self.fire)

    def flush(self):
        pass


def _heartbeat(sim, ident, period):
    while True:
        yield period + (ident % 977) * 0.001


def _pacer(sim, chains, links, t_storm):
    while sim.now < t_storm:
        for c in chains:
            c.left = links
            sim.call_soon(c.fire)
        yield 1.0


def _supervisor(sim, handles, t_storm, stride):
    # Operations completed: cancel their watchdogs.  Every stride-th one
    # "times out" and is left to fire in the expiry flood.
    yield t_storm
    for i, h in enumerate(handles):
        if i % stride:
            h.cancel()


def run_kernel_storm(simcls, n_timers, n_tasks, n_chains, links,
                     t_storm, stride, seed=18):
    """Build and run the three-phase storm on a bare simulator; return
    deterministic observables plus wall-clock throughput."""
    sim = simcls(seed=seed)
    ledger = [0]
    handles = []
    ap = handles.append
    for i in range(n_timers):
        ap(sim.schedule(3600.0 + (i % 9973) * 0.01, _lease_expire, ledger))
    for i in range(n_tasks):
        sim.spawn(_heartbeat(sim, i, 3600.0), name=f"hb{i}")
    chains = [_Chain(sim) for _ in range(n_chains)]
    sim.spawn(_pacer(sim, chains, links, t_storm), name="pacer")
    sim.spawn(_supervisor(sim, handles, t_storm, stride), name="sup")
    # The measured window isolates kernel cost: the collector would
    # otherwise charge whichever kernel happens to cross a GC threshold
    # mid-run for the whole population walk (see EXPERIMENTS.md).
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim.run(until=3750.0)
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    return {
        "kernel": "heap" if simcls is LegacySimulator else "calendar",
        "events": sim.events_processed,
        "seq": sim._seq,
        "vtime": sim.now,
        "expired": ledger[0],
        "chain_fires": sum(c.fired for c in chains),
        "pending_after": sim.pending(),
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.events_processed / wall, 1),
    }


_KERNEL_OBSERVABLES = ("events", "seq", "vtime", "expired", "chain_fires",
                       "pending_after")


# -- cluster storm ---------------------------------------------------------

def build_cluster(sim_kernel="calendar", trace_enabled=False,
                  n_sites=N_SITES):
    cfg = ClusterConfig(
        n_sites=n_sites, seed=18, root_pack_sites=[0, 1],
        sim_kernel=sim_kernel,
        cost=CostModel().with_overrides(trace_enabled=trace_enabled))
    return LocusCluster(config=cfg)


def run_cluster_storm(cluster, tasks_per_site=TASKS_PER_SITE,
                      rounds=ROUNDS, heartbeats=HEARTBEATS):
    sim = cluster.sim
    sites = cluster.sites

    def ping_handler(src, payload):
        yield from sites[payload["dst"]].cpu(0.3)
        return {"n": payload["n"], "from": payload["dst"]}

    for site in sites:
        site.register_handler("t18.ping", ping_handler)

    # Real filesystem traffic so the post-state digest is meaningful.
    for site in sites:
        sh = cluster.shell(site.site_id)
        sh.write_file(f"/storm-{site.site_id}", bytes([site.site_id]) * 64)
    cluster.settle()

    n = len(sites)

    def chatter(site, lane):
        me = site.site_id
        for i in range(rounds):
            yield 50.0 + sim.rng.random() * 25.0
            peer = (me + lane + i) % n
            if peer == me:
                peer = (peer + 1) % n
            resp = yield from site.rpc(peer, "t18.ping",
                                       {"n": i, "dst": peer})
            assert resp["n"] == i

    def heartbeat(site):
        for _ in range(heartbeats):
            yield 7.0
            site.cpu_used += 0.01

    m = Measure(cluster)
    for site in sites:
        for lane in range(tasks_per_site):
            cluster.spawn(site, chatter(site, lane))
        cluster.spawn(site, heartbeat(site))
    cluster.settle(max_time=10_000_000.0)
    out = m.done()

    digest_parts = [cluster.shell(s.site_id).read_file(f"/storm-{s.site_id}")
                    for s in sites]
    out["fs_digest"] = hashlib.sha256(b"".join(digest_parts)).hexdigest()[:16]
    out["cpu"] = {k: round(v, 6) for k, v in out["cpu"].items()}
    out.pop("latency", None)
    return out


_CLUSTER_OBSERVABLES = ("vtime", "events", "messages", "bytes", "by_type",
                        "cpu", "fs_digest")


# -- tests -----------------------------------------------------------------

def test_t18_kernel_parity():
    """Both kernels produce the identical schedule on the kernel storm:
    same event count, same seq allocation, same clock, same side effects."""
    new = run_kernel_storm(Simulator, **TINY)
    old = run_kernel_storm(LegacySimulator, **TINY)
    for key in _KERNEL_OBSERVABLES:
        assert new[key] == old[key], (key, new[key], old[key])


def test_t18_cluster_parity_and_trace():
    """Cluster-level observables (messages, cpu, fs digest) are identical
    across kernels, and tracing on/off does not perturb the schedule."""
    outs = {}
    for kernel in ("heap", "calendar"):
        cluster = build_cluster(sim_kernel=kernel, n_sites=4)
        outs[kernel] = run_cluster_storm(cluster, tasks_per_site=30,
                                         rounds=4, heartbeats=40)
    for key in _CLUSTER_OBSERVABLES:
        assert outs["heap"][key] == outs["calendar"][key], key

    traced = run_cluster_storm(build_cluster(trace_enabled=True, n_sites=4),
                               tasks_per_site=30, rounds=4, heartbeats=40)
    for key in _CLUSTER_OBSERVABLES:
        assert traced[key] == outs["calendar"][key], key


@pytest.mark.benchmark(group="T18")
def test_t18_kernel_throughput(benchmark):
    """Reduced-scale storm: the calendar kernel must beat the old heap
    kernel comfortably even at smoke scale (the full-scale ratio is
    recorded in BENCH_simcore.json)."""

    def _experiment():
        new = run_kernel_storm(Simulator, **SMOKE)
        old = run_kernel_storm(LegacySimulator, **SMOKE)
        for key in _KERNEL_OBSERVABLES:
            assert new[key] == old[key], (key, new[key], old[key])
        return {
            "events": new["events"],
            "calendar_eps": new["events_per_sec"],
            "heap_eps": old["events_per_sec"],
            "speedup": round(new["events_per_sec"] /
                             old["events_per_sec"], 2),
        }

    out = run_experiment(benchmark, _experiment)
    print_table("T18 smoke: kernel storm",
                ["kernel", "events", "events/sec"],
                [["calendar", out["events"], out["calendar_eps"]],
                 ["heap", out["events"], out["heap_eps"]]])
    # Conservative floor: the full-scale target is >= 10x, but smoke scale
    # has a smaller backdrop (shallower old-kernel heap) and noisy runners.
    assert out["speedup"] >= 2.5, out


# -- BENCH_simcore.json ----------------------------------------------------

def _storm_best_of_two(scale):
    """Best of two runs per kernel: the first full-scale run in a fresh
    process pays allocator warmup; observables are asserted equal on
    every run, not just the reported one."""
    results = {}
    for simcls in (Simulator, LegacySimulator):
        best = None
        for _ in range(2):
            out = run_kernel_storm(simcls, **scale)
            if best is not None:
                for key in _KERNEL_OBSERVABLES:
                    assert out[key] == best[key], key
            if best is None or \
                    out["events_per_sec"] > best["events_per_sec"]:
                best = out
        out = best
        results[out["kernel"]] = out
        print(f"kernel storm [{out['kernel']:9s}] events={out['events']} "
              f"wall={out['wall_s']:.2f}s eps={out['events_per_sec']:,.0f}",
              file=sys.stderr)
    for key in _KERNEL_OBSERVABLES:
        assert results["calendar"][key] == results["heap"][key], key
    return results


def _smoke_bench():
    """Reduced-scale storm for CI: same shape, portable runtimes.  The
    speedup *ratio* is what CI regression-checks against the committed
    baseline — absolute events/sec vary across runners, ratios travel."""
    results = _storm_best_of_two(SMOKE)
    ratio = (results["calendar"]["events_per_sec"] /
             results["heap"]["events_per_sec"])
    return {
        "workload": {"kernel_storm_smoke": SMOKE},
        "kernel_storm_smoke": results,
        "speedup": {"kernel_storm_smoke": round(ratio, 2)},
    }


def _bench():
    results = _storm_best_of_two(FULL)

    cluster_results = {}
    for kernel in ("heap", "calendar"):
        out = run_cluster_storm(build_cluster(sim_kernel=kernel))
        cluster_results[kernel] = out
        print(f"cluster storm [{kernel:9s}] events={out['events']} "
              f"wall={out['wall_s']:.2f}s eps={out['events_per_sec']:,.0f} "
              f"msgs={out['messages']} digest={out['fs_digest']}",
              file=sys.stderr)
    for key in _CLUSTER_OBSERVABLES:
        assert cluster_results["calendar"][key] == \
            cluster_results["heap"][key], key

    kernel_ratio = (results["calendar"]["events_per_sec"] /
                    results["heap"]["events_per_sec"])
    cluster_ratio = (cluster_results["calendar"]["events_per_sec"] /
                     cluster_results["heap"]["events_per_sec"])
    return {
        "workload": {"kernel_storm": FULL,
                     "cluster_storm": {"n_sites": N_SITES,
                                       "tasks_per_site": TASKS_PER_SITE,
                                       "rounds": ROUNDS,
                                       "heartbeats": HEARTBEATS}},
        "kernel_storm": results,
        "cluster_storm": {
            k: {key: v[key] for key in
                ("vtime", "events", "wall_s", "events_per_sec",
                 "messages", "fs_digest")}
            for k, v in cluster_results.items()},
        "speedup": {"kernel_storm": round(kernel_ratio, 2),
                    "cluster_storm": round(cluster_ratio, 2)},
    }


if __name__ == "__main__":
    bench = _smoke_bench() if "--smoke" in sys.argv[1:] else _bench()
    json.dump(bench, sys.stdout, indent=2, sort_keys=True)
    print()
