"""T10 — section 2.3.6: pull-based update propagation.

After a commit, the other storage sites bring their copies up to date by
pulling.  Series: propagation lag and pull traffic vs replication factor,
and the delta-pull optimization ("the message can indicate ... which
explicit logical pages were modified") vs whole-file pulls.
"""

import pytest

from repro import LocusCluster
from _harness import Measure, print_table, run_experiment

FILE_PAGES = 16


def _lag_for(rf):
    cluster = LocusCluster(n_sites=4, seed=120 + rf)
    psz = cluster.config.cost.page_size
    sh = cluster.shell(0)
    sh.setcopies(rf)
    sh.write_file("/repl", b"0" * (FILE_PAGES * psz))
    cluster.settle()
    ino = sh.stat("/repl")["ino"]
    sites = sh.stat("/repl")["storage_sites"]

    m = Measure(cluster)
    t0 = cluster.sim.now
    fd = sh.open("/repl", "w")
    sh.pwrite(fd, 0, b"1" * 64)      # touch one page
    sh.close(fd)
    commit_done = cluster.sim.now - t0
    cluster.settle()
    metrics = m.done()
    lag = cluster.sim.now - t0

    target = sh.stat("/repl")["version"]
    for s in sites:
        inode = cluster.site(s).packs[0].get_inode(ino)
        assert inode.version == target, f"site {s} not converged"
    pulls = metrics["by_type"].get("fs.pull_read", 0)
    return [rf, commit_done, lag, pulls]


def _experiment():
    return {"rows": [_lag_for(rf) for rf in (1, 2, 3, 4)]}


@pytest.mark.benchmark(group="T10")
def test_t10_propagation_lag(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        f"T10: one-page update to a {FILE_PAGES}-page file; propagation "
        f"to all copies",
        ["copies", "commit visible (vtime)", "all copies current (vtime)",
         "pages pulled"],
        out["rows"])
    rows = out["rows"]
    commit_times = [r[1] for r in rows]
    pulls = [r[3] for r in rows]
    # The committing site finishes in near-constant time regardless of the
    # replication factor (propagation is asynchronous background pull).
    assert max(commit_times) < 2.5 * min(commit_times), commit_times
    # Delta propagation: each extra copy pulls only the single changed
    # page, not the whole 16-page file.
    assert pulls == [0, 1, 2, 3], pulls
