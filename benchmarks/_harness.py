"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one figure or quantified claim from the paper
(see DESIGN.md's experiment index).  The interesting metrics are *virtual*
time and message counts from the deterministic simulation; wall-clock timing
from pytest-benchmark is reported as well but is not the reproduced result.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Sequence

from repro import LocusCluster
from repro.net.stats import StatsWindow
from repro.obs.histogram import merge_windows


def run_experiment(benchmark, fn: Callable[[], Dict], rounds: int = 1):
    """Benchmark ``fn`` (which builds its own deterministic world and
    returns a metrics dict); report metrics via extra_info and return them.
    """
    out: Dict = {}

    def wrapper():
        out.clear()
        out.update(fn())

    benchmark.pedantic(wrapper, rounds=rounds, iterations=1)
    for key, value in out.items():
        if isinstance(value, (int, float, str)):
            benchmark.extra_info[key] = value
    return out


def print_table(title: str, headers: Sequence[str],
                rows: List[Sequence]) -> None:
    """Print one results table in the style the paper would report."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in text_rows)) if text_rows
              else len(h) for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===", file=sys.stderr)
    print(line, file=sys.stderr)
    print("-" * len(line), file=sys.stderr)
    for row in text_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)),
              file=sys.stderr)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


class Measure:
    """Capture virtual time, per-site cpu, and message traffic around a
    block of cluster activity."""

    def __init__(self, cluster: LocusCluster):
        self.cluster = cluster
        self.t0 = cluster.sim.now
        self.cpu0 = {s.site_id: s.cpu_used for s in cluster.sites}
        self.window = StatsWindow(cluster.stats)
        # Windowed registry snapshots: BENCH entries report latency
        # percentiles for exactly the measured activity (repro.obs).
        self.reg0 = {s.site_id: s.metrics.snapshot() for s in cluster.sites}
        # Simulator-kernel throughput over the window (wall-clock is the
        # one metric here that is NOT deterministic).
        self.events0 = cluster.sim.events_processed
        self.wall0 = time.perf_counter()

    def latency(self, prefix: str = "") -> Dict[str, Dict]:
        """Cluster-wide p50/p95/p99 over the measurement window, merged
        across sites via the public ``repro.obs.histogram`` API."""
        diffs = [self.reg0[s.site_id].diff(s.metrics.snapshot())
                 for s in self.cluster.sites]
        return merge_windows([d.hists for d in diffs], prefix)

    def done(self) -> Dict:
        wall = time.perf_counter() - self.wall0
        events = self.cluster.sim.events_processed - self.events0
        snap = self.window.close()
        data_msgs = sum(snap.sent.get(k, 0) for k in snap.pages)
        name_hits = sum(s.name_cache.stats.hits for s in self.cluster.sites)
        name_misses = sum(s.name_cache.stats.misses
                          for s in self.cluster.sites)
        return {
            "vtime": self.cluster.sim.now - self.t0,
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            "cpu": {s.site_id: s.cpu_used - self.cpu0[s.site_id]
                    for s in self.cluster.sites},
            "cpu_total": sum(s.cpu_used for s in self.cluster.sites)
            - sum(self.cpu0.values()),
            "messages": snap.total_messages,
            "bytes": snap.total_bytes,
            "by_type": dict(snap.sent),
            # Batched-transfer effectiveness: data pages moved per
            # page-carrying message inside this window.
            "pages_per_message": (sum(snap.pages.values()) / data_msgs
                                  if data_msgs else 0.0),
            # Name-cache effectiveness (cumulative per cluster, since the
            # per-site stats are not windowed).
            "name_cache_hit_rate": (name_hits / (name_hits + name_misses)
                                    if name_hits + name_misses else 0.0),
            "pipelined_rounds": sum(s.fs.propagator.stats.pipelined_rounds
                                    for s in self.cluster.sites),
            # Windowed syscall/RPC latency percentiles via the registry.
            "latency": self.latency(),
        }
