"""T9 — section 2.3.6: the shadow-page commit mechanism.

"Such a commit mechanism is useful both for database work and, in general,
and can be integrated without performance degradation."  Shadowing is cheap
because whole-page changes need no extra i/o; partial-page changes read the
old page first.  Atomicity: a crash between modify and commit leaves the
old version; after commit, the new one — "never a partially made change".
"""

import pytest

from repro import LocusCluster
from _harness import print_table, run_experiment


def _experiment():
    cluster = LocusCluster(n_sites=2, seed=110)
    psz = cluster.config.cost.page_size
    sh = cluster.shell(0)
    sh.write_file("/subject", b"0" * (4 * psz))
    cluster.settle()

    # Whole-page overwrite commit.
    t0 = cluster.sim.now
    fd = sh.open("/subject", "w")
    sh.pwrite(fd, 0, b"1" * psz)
    sh.commit(fd)
    whole_page = cluster.sim.now - t0

    # Partial-page update commit (reads old page first).
    cluster.site(0).cache.clear()
    t1 = cluster.sim.now
    sh.pwrite(fd, 10, b"xy")
    sh.commit(fd)
    partial_page = cluster.sim.now - t1

    # Abort cost.
    t2 = cluster.sim.now
    sh.pwrite(fd, 0, b"2" * psz)
    sh.abort(fd)
    abort_cost = cluster.sim.now - t2
    sh.close(fd)

    # Atomicity under crash: modify remotely, crash the storage site before
    # commit; the old version must survive intact.
    sh1 = cluster.shell(1)
    sh1.write_file("/atomic", b"OLD-" * 256)
    cluster.settle()
    wfd = sh.open("/atomic", "w")       # US=0, SS=1
    sh.pwrite(wfd, 0, b"NEW-" * 256)
    cluster.fail_site(1)
    cluster.restart_site(1)
    cluster.settle()
    survived = cluster.shell(1).read_file("/atomic")
    atomic_ok = survived == b"OLD-" * 256

    return {
        "whole_page": whole_page,
        "partial_page": partial_page,
        "abort_cost": abort_cost,
        "atomic_ok": atomic_ok,
    }


@pytest.mark.benchmark(group="T9")
def test_t9_shadow_commit(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T9: shadow-page commit mechanism",
        ["operation", "vtime"],
        [
            ["whole-page write + commit", out["whole_page"]],
            ["partial-page write + commit", out["partial_page"]],
            ["write + abort", out["abort_cost"]],
        ])
    # Whole-page changes avoid the read-old-page i/o: committing a full
    # page is not more expensive than a partial update.
    assert out["whole_page"] <= out["partial_page"] * 1.5
    # "One is always left with either the original file or a completely
    # changed file but never with a partially made change, even in the
    # face of local or foreign site failures."
    assert out["atomic_ok"]
