"""T17 — observability: flight-recorder overhead and latency percentiles.

Two claims behind the flight recorder (docs/OBSERVABILITY.md):

(a) **Tracing is free.**  Recording is observational only — it never
    charges CPU, sends messages, adds yield points, or touches the
    simulator RNG — so the T14 hot-path workload must report the *same*
    virtual time and the *same* per-type message counts with
    ``trace_enabled`` on and off.  The acceptance bound is a <5% virtual
    time delta; the expected delta is exactly zero.

(b) **Percentiles are deterministic and meaningful.**  The per-site
    :class:`~repro.obs.registry.MetricsRegistry` histograms report
    p50/p95/p99 syscall latency through the benchmark harness's windowed
    snapshots; under the T16 fault storm the tail (p99) must reflect the
    outages that the median (p50) rides through.

``python benchmarks/test_t17_observe.py`` writes BENCH_observe.json.
"""

import json
import sys

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import LocusError
from repro.faults import FaultPlan
from _harness import Measure, print_table, run_experiment

DEPTH = 3
FANOUT = 60
REPEATS = 20

STORM_SEEDS = [11, 23, 47]
PAGE = 1024
CONTENT = bytes((i * 13) % 256 for i in range(4 * PAGE))
READS = 150
READ_INTERVAL = 15.0
WRITES = 30
WRITE_INTERVAL = 150.0


# -- scenario (a): the T14 remote-walk hot path, trace on vs off -----------

def _walk_metrics(trace_enabled):
    cost = CostModel().with_overrides(trace_enabled=trace_enabled)
    cluster = LocusCluster(n_sites=2, seed=23, root_pack_sites=[0],
                           cost=cost)
    sh0 = cluster.shell(0)
    path = ""
    for d in range(DEPTH):
        path += f"/dir{d}"
        sh0.mkdir(path)
        for i in range(FANOUT):
            sh0.write_file(f"{path}/entry-{i:04d}", b"")
    leaf = path + "/leaf"
    sh0.write_file(leaf, b"L" * 2048)
    cluster.settle()
    sh1 = cluster.shell(1)
    sh1.stat(leaf)
    m = Measure(cluster)
    for __ in range(REPEATS):
        sh1.stat(leaf)
    out = m.done()
    out["spans"] = len(cluster.tracer.spans)
    return out


# -- scenario (b): T16 storm percentiles through the registry --------------

def _storm(seed, t0):
    return (FaultPlan(seed=seed, name="observe-storm")
            .crash(t0 + 300.0, site=1)
            .loss_burst(t0 + 1200.0, rate=0.08, duration=300.0)
            .restart(t0 + 2000.0, site=1)
            .heal(t0 + 2600.0)
            .crash(t0 + 3200.0, site=2)
            .latency_spike(t0 + 3600.0, delta=5.0, duration=400.0,
                           src=0, dst=1)
            .restart(t0 + 4800.0, site=2)
            .heal(t0 + 5400.0)
            .drop("fs.read_page", count=2, after_messages=600))


def _storm_metrics(seed):
    # Explicit default cost: tests/conftest.py's flag shim never applies.
    cluster = LocusCluster(n_sites=3, seed=seed, root_pack_sites=[1, 2],
                           cost=CostModel())
    setup = cluster.shell(0)
    setup.setcopies(2)
    setup.write_file("/hot", CONTENT)
    setup.write_file("/w", b"w" * 256)
    cluster.settle()
    t0 = cluster.sim.now
    cluster.inject(_storm(seed, t0))

    api = cluster.shell(0).api
    completions = []

    def reader():
        for __ in range(READS):
            try:
                data = yield from api.read_file("/hot")
                completions.append(data == CONTENT)
            except LocusError:
                completions.append(False)
            yield READ_INTERVAL

    def writer():
        for i in range(WRITES):
            try:
                yield from api.write_file("/w", bytes([i % 251]) * 256)
            except LocusError:
                pass
            yield WRITE_INTERVAL

    m = Measure(cluster)
    cluster.spawn(0, reader())
    cluster.spawn(0, writer())
    cluster.settle(max_time=40_000.0)
    out = m.done()
    out["completion_rate"] = round(sum(completions) / len(completions), 4)
    out["spans"] = len(cluster.tracer.spans)
    out["instants"] = len(cluster.tracer.instants)
    return out


def _experiment():
    on = _walk_metrics(True)
    off = _walk_metrics(False)
    vtime_delta = (abs(on["vtime"] - off["vtime"]) / off["vtime"]
                   if off["vtime"] else 0.0)
    storms = {seed: _storm_metrics(seed) for seed in STORM_SEEDS}
    return {
        "walk_on": on,
        "walk_off": off,
        "vtime_delta": vtime_delta,
        "storms": storms,
    }


@pytest.mark.benchmark(group="T17")
def test_t17_trace_overhead(benchmark):
    """T14 walk workload: tracing on/off changes nothing measurable."""
    def _ab():
        on = _walk_metrics(True)
        off = _walk_metrics(False)
        return {"on_vtime": on["vtime"], "off_vtime": off["vtime"],
                "on_msgs": on["messages"], "off_msgs": off["messages"],
                "on_by_type": on["by_type"], "off_by_type": off["by_type"],
                "on_spans": on["spans"], "off_spans": off["spans"]}
    out = run_experiment(benchmark, _ab)
    print_table(
        f"T17: {REPEATS} remote walks, flight recorder on vs off",
        ["config", "vtime", "messages", "spans"],
        [["trace on", out["on_vtime"], out["on_msgs"], out["on_spans"]],
         ["trace off", out["off_vtime"], out["off_msgs"],
          out["off_spans"]]])
    # Acceptance: <5% virtual-time delta.  Expected: exactly zero, and
    # identical per-type message counts — tracing is purely observational.
    delta = abs(out["on_vtime"] - out["off_vtime"]) / out["off_vtime"]
    assert delta < 0.05, delta
    assert out["on_vtime"] == out["off_vtime"]
    assert out["on_by_type"] == out["off_by_type"]
    assert out["on_spans"] > 0 and out["off_spans"] == 0


@pytest.mark.benchmark(group="T17")
def test_t17_storm_percentiles(benchmark):
    """T16 storm: registry percentiles capture the outage tail."""
    def _one():
        return _storm_metrics(STORM_SEEDS[0])
    out = run_experiment(benchmark, _one)
    lat = out["latency"]
    assert "syscall.pread" in lat, sorted(lat)
    pread = lat["syscall.pread"]
    print_table(
        f"T17: storm seed {STORM_SEEDS[0]} syscall latency (registry)",
        ["metric", "count", "p50", "p95", "p99"],
        [[name, d["count"], d["p50"], d["p95"], d["p99"]]
         for name, d in sorted(lat.items())
         if name.startswith("syscall.")])
    assert pread["count"] >= READS * 0.95
    assert pread["p99"] >= pread["p50"] > 0
    # The storm's retries and failovers stretch the tail well past the
    # healthy median read.
    assert pread["p99"] > pread["p50"]
    assert out["completion_rate"] >= 0.95
    assert out["spans"] > 0 and out["instants"] > 0


@pytest.mark.benchmark(group="T17")
def test_t17_percentile_determinism(benchmark):
    """The same seed reports byte-identical percentile dicts."""
    def _twice():
        a = _storm_metrics(STORM_SEEDS[0])
        b = _storm_metrics(STORM_SEEDS[0])
        return {"equal": a["latency"] == b["latency"]
                and a["vtime"] == b["vtime"]
                and a["spans"] == b["spans"]}
    out = run_experiment(benchmark, _twice)
    assert out["equal"]


if __name__ == "__main__":
    out = _experiment()
    baseline = {
        "experiment": "T17 flight-recorder overhead and percentiles",
        "t14_walk": {
            "trace_on": {k: out["walk_on"][k]
                         for k in ("vtime", "messages", "spans")},
            "trace_off": {k: out["walk_off"][k]
                          for k in ("vtime", "messages", "spans")},
            "vtime_delta": round(out["vtime_delta"], 6),
            "latency": out["walk_on"]["latency"],
        },
        "t16_storm": {
            str(seed): {
                "completion_rate": m["completion_rate"],
                "vtime": m["vtime"],
                "spans": m["spans"],
                "instants": m["instants"],
                "latency": {name: d for name, d in m["latency"].items()
                            if name.startswith(("syscall.", "rpc."))},
            }
            for seed, m in out["storms"].items()
        },
    }
    with open("BENCH_observe.json", "w") as fh:
        json.dump(baseline, fh, indent=2, default=str)
        fh.write("\n")
    json.dump(baseline, sys.stdout, indent=2, default=str)
    print()
