"""T15 — write-path ablation: batched commit flush × manifest heal pull.

The write-side mirror of T14.  Two hot paths:

(a) a large sequential write plus its atomic commit from a diskless using
    site (section 2.3.5's one ``fs.write_page`` one-way per page, then the
    section 2.3.6 commit), and
(b) the post-heal propagation of many small files (one ``fs.pull_open``
    round trip per file in the paper's pull protocol).

The two optimisations under test (both default-off, so every other
benchmark still measures the paper's exact protocol):

* ``batch_writes`` — stage dirty pages at the US and ship them in
  ``fs.write_pages`` chunks of up to ``batch_pages``; the commit carries
  the staged-page count so a lost chunk can never half-commit.
* ``pull_manifest`` — service a heal backlog with one ``fs.pull_manifest``
  RPC per source plus ``pull_pipeline`` concurrent pulls, instead of a
  per-file open round trip.

Acceptance: batching gives >= 2x fewer messages on the 32-page write +
commit, and the manifest path gives >= 3x fewer sequential round trips
(PropStats.sync_waits) healing 20 small files.
"""

import json
import sys

import pytest

from repro import LocusCluster, Mode
from repro.config import CostModel
from repro.fs.propagation import PropStats
from repro.net.stats import StatsWindow
from _harness import print_table, run_experiment

WRITE_PAGES = 32      # pages in the measured sequential write
HEAL_FILES = 20       # small files healed after the partition

COMBOS = [
    ("off", {}),
    ("batch", {"batch_writes": True, "batch_pages": 8}),
    ("manifest", {"pull_manifest": True, "pull_pipeline": 4,
                  "batch_pages": 8}),
    ("both", {"batch_writes": True, "pull_manifest": True,
              "batch_pages": 8, "pull_pipeline": 4}),
]


def _cost(flags):
    return CostModel().with_overrides(**flags)


# -- scenario (a): 32-page sequential write + commit -----------------------

def _write_metrics(flags):
    cluster = LocusCluster(n_sites=2, seed=23, root_pack_sites=[0],
                           cost=_cost(flags))
    psz = cluster.config.cost.page_size
    data = bytes((i * 7) % 256 for i in range(WRITE_PAGES * psz))
    sh0 = cluster.shell(0)
    sh0.write_file("/big", b"0" * len(data))     # pre-create: the window
    cluster.settle()                             # sees only write + commit
    site1 = cluster.site(1)
    ino = sh0.stat("/big")["ino"]
    handle = cluster.call(1, site1.fs.open_gfile((0, ino), Mode.WRITE))
    t0 = cluster.sim.now
    win = StatsWindow(cluster.stats)
    cluster.call(1, site1.fs.write(handle, 0, data))
    cluster.call(1, site1.fs.commit(handle))
    snap = win.close()
    vtime = cluster.sim.now - t0
    cluster.call(1, site1.fs.close(handle))
    cluster.settle()
    assert cluster.shell(0).read_file("/big") == data
    return {
        "vtime": round(vtime, 2),
        "messages": snap.total_messages,
        "bytes": snap.total_bytes,
        "write_page_msgs": snap.sent.get("fs.write_page", 0),
        "write_pages_msgs": snap.sent.get("fs.write_pages", 0),
    }


# -- scenario (b): healing 20 small diverged files -------------------------

def _heal_metrics(flags):
    cluster = LocusCluster(n_sites=2, seed=7, cost=_cost(flags))
    sh0, sh1 = cluster.shell(0), cluster.shell(1)
    sh0.setcopies(2)
    for i in range(HEAL_FILES):
        sh0.write_file(f"/f{i}", b"a" * 100)
    cluster.settle()
    cluster.partition({0}, {1})
    for i in range(HEAL_FILES):
        sh0.write_file(f"/f{i}", bytes([i]) * 200)
    # Measure the heal alone: zero the puller's stats first.
    cluster.sites[1].fs.propagator.stats = PropStats()
    t0 = cluster.sim.now
    win = StatsWindow(cluster.stats)
    cluster.heal()
    cluster.settle()
    snap = win.close()
    vtime = cluster.sim.now - t0
    for i in range(HEAL_FILES):
        assert sh1.read_file(f"/f{i}") == bytes([i]) * 200
    prop = cluster.sites[1].fs.propagator.stats
    return {
        "vtime": round(vtime, 2),
        "messages": snap.total_messages,
        "sync_waits": prop.sync_waits,
        "manifest_requests": prop.manifest_requests,
        "manifest_hits": prop.manifest_hits,
        "pulls": prop.pulls,
    }


def _experiment():
    rows = []
    results = {}
    for label, flags in COMBOS:
        write = _write_metrics(flags)
        heal = _heal_metrics(flags)
        results[label] = {"write": write, "heal": heal}
        rows.append([
            label,
            write["messages"], write["vtime"],
            write["write_pages_msgs"],
            heal["sync_waits"], heal["messages"], heal["vtime"],
        ])
    off, both = results["off"], results["both"]
    return {
        "rows": rows,
        "results": results,
        "write_msg_ratio": (off["write"]["messages"]
                            / both["write"]["messages"]),
        "write_vtime_ratio": (off["write"]["vtime"]
                              / both["write"]["vtime"]),
        "heal_roundtrip_ratio": (off["heal"]["sync_waits"]
                                 / both["heal"]["sync_waits"]),
        "heal_msg_ratio": (off["heal"]["messages"]
                           / both["heal"]["messages"]),
    }


@pytest.mark.benchmark(group="T15")
def test_t15_writepath_ablation(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        f"T15: {WRITE_PAGES}-page write+commit and {HEAL_FILES}-file heal",
        ["config", "write msgs", "write vtime", "wp batches",
         "heal rts", "heal msgs", "heal vtime"],
        out["rows"])
    # Acceptance floors (ISSUE 2): >= 2x fewer messages on the sequential
    # write + commit, >= 3x fewer round trips on the 20-file heal.
    assert out["write_msg_ratio"] >= 2.0, out["write_msg_ratio"]
    assert out["heal_roundtrip_ratio"] >= 3.0, out["heal_roundtrip_ratio"]
    res = out["results"]
    # Each optimisation alone carries its own scenario.
    assert (res["batch"]["write"]["messages"]
            < res["off"]["write"]["messages"])
    assert (res["manifest"]["heal"]["sync_waits"]
            < res["off"]["heal"]["sync_waits"])
    # The flags engage the mechanisms they claim to.
    assert res["batch"]["write"]["write_pages_msgs"] >= 2
    assert res["off"]["write"]["write_pages_msgs"] == 0
    assert res["manifest"]["heal"]["manifest_requests"] >= 1
    assert res["manifest"]["heal"]["manifest_hits"] >= HEAL_FILES // 2
    # Every combo heals every file exactly once — no wasted pulls.
    for label, __ in COMBOS:
        assert res[label]["heal"]["pulls"] == HEAL_FILES


@pytest.mark.benchmark(group="T15")
def test_t15_determinism(benchmark):
    """Identical seeds give identical traces with both flags on — the
    staged flush and the manifest waves stay deterministic."""
    def _twice():
        a = _write_metrics(dict(COMBOS[3][1]))
        b = _write_metrics(dict(COMBOS[3][1]))
        c = _heal_metrics(dict(COMBOS[3][1]))
        d = _heal_metrics(dict(COMBOS[3][1]))
        return {"equal": a == b and c == d}
    out = run_experiment(benchmark, _twice)
    assert out["equal"]


if __name__ == "__main__":
    out = _experiment()
    baseline = {
        "experiment": "T15 write-path ablation",
        "combos": {label: out["results"][label] for label, __ in COMBOS},
        "ratios": {k: round(out[k], 3) for k in
                   ("write_msg_ratio", "write_vtime_ratio",
                    "heal_roundtrip_ratio", "heal_msg_ratio")},
    }
    json.dump(baseline, sys.stdout, indent=2, default=str)
    print()
