"""T12 — section 3.1: remote process creation.

"Run avoids the copy of the parent process image which occurs with fork."
Series: remote fork cost vs parent image size (it grows), remote run cost
vs parent image size (it stays flat), plus local-vs-remote process
creation.
"""

import pytest

from repro import LocusCluster
from repro.proc.process import Image
from _harness import Measure, print_table, run_experiment


def _creation_cost(data_pages, use_run):
    cluster = LocusCluster(n_sites=2, seed=140)

    def noop(api):
        return 0
        yield  # pragma: no cover

    cluster.register_program("noop", noop)
    sh = cluster.shell(0)
    sh.mkdir("/bin")
    sh.install_program("/bin/noop", "noop")
    cluster.settle()
    sh.proc.image = Image(program="shell", data_pages=data_pages)
    m = Measure(cluster)
    t0 = cluster.sim.now
    if use_run:
        sh.run("/bin/noop", dest=1)
    else:
        sh.fork(None, dest=1)
    elapsed = cluster.sim.now - t0
    metrics = m.done()
    return elapsed, metrics["bytes"]


def _experiment():
    rows = []
    for pages in (8, 64, 256):
        fork_t, fork_b = _creation_cost(pages, use_run=False)
        run_t, run_b = _creation_cost(pages, use_run=True)
        rows.append([pages, fork_t, fork_b, run_t, run_b])
    return {"rows": rows}


@pytest.mark.benchmark(group="T12")
def test_t12_fork_vs_run(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T12: remote process creation vs parent image size",
        ["image data pages", "fork vtime", "fork bytes",
         "run vtime", "run bytes"],
        out["rows"])
    rows = out["rows"]
    fork_times = [r[1] for r in rows]
    run_times = [r[3] for r in rows]
    # Fork cost scales with the image...
    assert fork_times[-1] > 5 * fork_times[0], fork_times
    # ...while run stays flat (within 30%) regardless of the parent image.
    assert run_times[-1] < 1.3 * run_times[0], run_times
    # At large images, run beats fork decisively.
    assert rows[-1][3] < rows[-1][1] / 5
