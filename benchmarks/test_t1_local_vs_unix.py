"""T1 — "In LOCUS, when resources are local, access is no more expensive
than on a conventional Unix system" (section 2.1); section 6: "Measurements
consistently indicate that Locus performance equals Unix in the local case."

Identical operation mixes run against (a) LOCUS with US=CSS=SS on one site
and (b) the conventional single-machine Unix filesystem baseline on the same
cost model; the per-operation virtual-time ratio should be about 1.
"""

import pytest

from repro import LocusCluster
from repro.baselines.unixfs import UnixFs
from repro.sim import Simulator
from _harness import print_table, run_experiment

N_FILES = 20
FILE_SIZE = 2500
READS_PER_FILE = 3


def _locus_run():
    cluster = LocusCluster(n_sites=1, seed=3)
    sh = cluster.shell(0)
    t0 = cluster.sim.now
    sh.mkdir("/work")
    for i in range(N_FILES):
        sh.write_file(f"/work/f{i}", bytes([i]) * FILE_SIZE)
    create_time = cluster.sim.now - t0

    t1 = cluster.sim.now
    for i in range(N_FILES):
        for __ in range(READS_PER_FILE):
            assert len(sh.read_file(f"/work/f{i}")) == FILE_SIZE
    read_time = cluster.sim.now - t1

    t2 = cluster.sim.now
    for i in range(N_FILES):
        sh.unlink(f"/work/f{i}")
    unlink_time = cluster.sim.now - t2
    return create_time, read_time, unlink_time


def _unix_run():
    sim = Simulator(seed=3)
    fs = UnixFs(sim)
    t0 = sim.now
    sim.run_task(fs.mkdir("/work"))
    for i in range(N_FILES):
        sim.run_task(fs.write_file(f"/work/f{i}", bytes([i]) * FILE_SIZE))
    create_time = sim.now - t0

    t1 = sim.now
    for i in range(N_FILES):
        for __ in range(READS_PER_FILE):
            assert len(sim.run_task(fs.read_file(f"/work/f{i}"))) == \
                FILE_SIZE
    read_time = sim.now - t1

    t2 = sim.now
    for i in range(N_FILES):
        sim.run_task(fs.unlink(f"/work/f{i}"))
    unlink_time = sim.now - t2
    return create_time, read_time, unlink_time


def _experiment():
    locus = _locus_run()
    unix = _unix_run()
    labels = ["create+write", "sequential read", "unlink"]
    rows = []
    ratios = {}
    for label, l, u in zip(labels, locus, unix):
        ratios[label] = l / u
        rows.append([label, l, u, l / u])
    return {"rows": rows, "ratios": ratios}


@pytest.mark.benchmark(group="T1")
def test_t1_local_access_equals_unix(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T1: local LOCUS vs conventional Unix (virtual time, same workload)",
        ["operation mix", "LOCUS local", "Unix baseline", "ratio"],
        out["rows"])
    # The paper's claim: equal in the local case.  Allow a little slack for
    # the (constant) bookkeeping LOCUS layers over the same substrate.
    for label, ratio in out["ratios"].items():
        assert 0.75 <= ratio <= 1.35, f"{label} ratio {ratio:.2f}"
