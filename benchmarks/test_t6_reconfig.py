"""T6 — section 5: dynamic reconfiguration cost.

"Any delay imposed by the system on user activity during reconfiguration
should be negligible" and the merge protocol "polls the sites
asynchronously" precisely to avoid a large additive delay in big networks.

Series over network size: partition-protocol convergence time and messages,
merge-protocol convergence time and messages.
"""

import pytest

from repro import LocusCluster
from _harness import Measure, print_table, run_experiment


def _experiment():
    rows = []
    for n in (2, 4, 8, 16):
        cluster = LocusCluster(n_sites=n, seed=80 + n,
                               root_pack_sites=[0, 1])
        half = set(range(n // 2))
        other = set(range(n // 2, n))

        m = Measure(cluster)
        t0 = cluster.sim.now
        cluster.partition(half, other)
        part = m.done()
        part_msgs = sum(v for k, v in part["by_type"].items()
                        if k.startswith("topo.part"))
        part_time = cluster.sim.now - t0

        m = Measure(cluster)
        t1 = cluster.sim.now
        cluster.heal()
        merge = m.done()
        merge_msgs = sum(v for k, v in merge["by_type"].items()
                         if k.startswith("topo.merge"))
        merge_time = cluster.sim.now - t1

        assert all(s.topology.partition_set == set(range(n))
                   for s in cluster.sites)
        rows.append([n, part_msgs, part_time, merge_msgs, merge_time])
    return {"rows": rows}


@pytest.mark.benchmark(group="T6")
def test_t6_reconfiguration_scaling(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T6: reconfiguration protocols vs network size "
        "(split into halves, then merge)",
        ["sites", "partition msgs", "partition vtime",
         "merge msgs", "merge vtime"],
        out["rows"])
    rows = out["rows"]
    sizes = [r[0] for r in rows]
    merge_times = [r[4] for r in rows]
    part_msgs = [r[1] for r in rows]
    # Message counts grow with network size...
    assert part_msgs[-1] > part_msgs[0]
    # ...but asynchronous merge polling keeps convergence *time* from
    # growing linearly with the site count: going 2 -> 16 sites must not
    # cost 8x the merge time.
    assert merge_times[-1] < 4 * max(merge_times[0], 1.0), merge_times
    # Merge message count stays modest: a poll + announce per site, not a
    # quadratic storm.
    merge_msgs = [r[3] for r in rows]
    assert merge_msgs[-1] <= 8 * sizes[-1], merge_msgs
