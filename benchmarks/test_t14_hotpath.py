"""T14 — hot-path ablation: name cache × batched page transfer.

Two hot paths from the paper's own profile of distributed operation:

(a) repeated pathname resolution against *remote, multi-page* directories
    (section 2.3.4's per-component interrogation — open, read the pages,
    close, for every component of every walk), and
(b) the propagation pull of a large file after a remote commit (section
    2.3.6 — one ``fs.pull_read`` round trip per page in the paper).

The two optimisations under test (DESIGN.md additions, both default-off so
every other benchmark still measures the paper's exact protocol):

* ``name_cache``   — per-site cache of decoded directory entries keyed by
  (gfile, version vector); a walk revalidates with one small version probe
  instead of re-reading the directory pages.
* ``batch_pages`` / ``readahead_window`` / ``pull_pipeline`` — multi-page
  read and pull-range messages, plus K range requests kept in flight
  during propagation.

The ablation grid crosses them: off/off, cache only, batch only, both.
Acceptance: "both" achieves >= 2x reduction in message count AND virtual
time vs off/off, on both scenarios; identical seeds give identical traces.
"""

import json
import sys

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.net.stats import StatsWindow
from _harness import Measure, print_table, run_experiment

DEPTH = 3           # /dir0/dir1/dir2/leaf
FANOUT = 60         # entries per directory -> every directory is 2+ pages
REPEATS = 20        # resolutions in the measured window
PULL_KB = 32        # pages in the propagated file

SCAN_KB = 24        # pages in the remote sequential-scan file

COMBOS = [
    ("off", {}),
    ("cache", {"name_cache": True}),
    ("batch", {"batch_pages": 8, "readahead_window": 8,
               "pull_pipeline": 4}),
    ("both", {"name_cache": True, "batch_pages": 8,
              "readahead_window": 8, "pull_pipeline": 4}),
    # Adaptive readahead: the window starts at the floor (1) and grows
    # with the observed sequential run length up to readahead_max, so
    # scans stream without random access ever over-fetching.
    ("adaptive", {"name_cache": True, "batch_pages": 8,
                  "readahead_window": 1, "readahead_max": 8,
                  "pull_pipeline": 4}),
]


def _cost(flags):
    return CostModel().with_overrides(**flags)


# -- scenario (a): repeated remote path resolution -------------------------

def _walk_metrics(flags):
    cluster = LocusCluster(n_sites=2, seed=23, root_pack_sites=[0],
                           cost=_cost(flags))
    sh0 = cluster.shell(0)
    path = ""
    for d in range(DEPTH):
        path += f"/dir{d}"
        sh0.mkdir(path)
        for i in range(FANOUT):
            sh0.write_file(f"{path}/entry-{i:04d}", b"")
    leaf = path + "/leaf"
    sh0.write_file(leaf, b"L" * 2048)
    cluster.settle()
    sh1 = cluster.shell(1)
    sh1.stat(leaf)                     # cold walk: fills caches if enabled
    m = Measure(cluster)
    for __ in range(REPEATS):
        sh1.stat(leaf)
    out = m.done()
    # Every walk must see the real file, cache or no cache.
    assert sh1.stat(leaf)["size"] == 2048
    return out


# -- scenario (b): multi-page propagation pull -----------------------------

def _pull_metrics(flags):
    cluster = LocusCluster(n_sites=2, seed=23, cost=_cost(flags))
    sh0 = cluster.shell(0)
    sh0.setcopies(2)
    sh0.write_file("/big", b"s")
    cluster.settle()                   # tiny initial propagation
    data = bytes((i * 7) % 256 for i in range(PULL_KB * 1024))
    sh0.write_file("/big", data)
    # Window opens after the local write returns: the clock and the message
    # window see (almost) only site 1's pull of the new pages.
    t0 = cluster.sim.now
    win = StatsWindow(cluster.stats)
    cluster.settle()
    snap = win.close()
    vtime = cluster.sim.now - t0
    assert cluster.shell(1).read_file("/big") == data
    data_msgs = sum(snap.sent.get(k, 0) for k in snap.pages)
    return {
        "vtime": vtime,
        "messages": snap.total_messages,
        "bytes": snap.total_bytes,
        "pages_per_message": (sum(snap.pages.values()) / data_msgs
                              if data_msgs else 0.0),
        "pipelined_rounds": sum(s.fs.propagator.stats.pipelined_rounds
                                for s in cluster.sites),
    }


# -- scenario (c): remote sequential scan (adaptive readahead) -------------

def _scan_metrics(flags):
    """Page-at-a-time sequential read of a remote file.

    The shell read issues one ``fs.read`` per page, so a fixed
    ``readahead_window`` already batches the fetches; the adaptive combo
    (floor 1, ``readahead_max`` cap) must reach the same message count by
    growing with the observed run length instead of being pre-sized.
    """
    cluster = LocusCluster(n_sites=2, seed=23, root_pack_sites=[0],
                           cost=_cost(flags))
    sh0 = cluster.shell(0)
    data = bytes((i * 11) % 256 for i in range(SCAN_KB * 1024))
    sh0.write_file("/seq", data)
    cluster.settle()
    m = Measure(cluster)
    assert cluster.shell(1).read_file("/seq") == data
    return m.done()


def _experiment():
    rows = []
    results = {}
    for label, flags in COMBOS:
        walk = _walk_metrics(flags)
        pull = _pull_metrics(flags)
        scan = _scan_metrics(flags)
        results[label] = {"walk": walk, "pull": pull, "scan": scan}
        rows.append([
            label,
            walk["messages"], walk["vtime"],
            round(walk["name_cache_hit_rate"], 2),
            pull["messages"], pull["vtime"],
            round(pull["pages_per_message"], 1),
            scan["messages"], scan["vtime"],
        ])
    off, both = results["off"], results["both"]
    return {
        "rows": rows,
        "results": results,
        "walk_msg_ratio": off["walk"]["messages"] / both["walk"]["messages"],
        "walk_vtime_ratio": off["walk"]["vtime"] / both["walk"]["vtime"],
        "pull_msg_ratio": off["pull"]["messages"] / both["pull"]["messages"],
        "pull_vtime_ratio": off["pull"]["vtime"] / both["pull"]["vtime"],
    }


@pytest.mark.benchmark(group="T14")
def test_t14_hotpath_ablation(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        f"T14: {REPEATS} remote walks ({DEPTH} deep, {FANOUT}-entry dirs) "
        f"and one {PULL_KB}-page pull",
        ["config", "walk msgs", "walk vtime", "name hit",
         "pull msgs", "pull vtime", "pages/msg",
         "scan msgs", "scan vtime"],
        out["rows"])
    # The acceptance floor: both optimisations together at least halve
    # message count and virtual time on both hot paths.
    assert out["walk_msg_ratio"] >= 2.0, out["walk_msg_ratio"]
    assert out["walk_vtime_ratio"] >= 2.0, out["walk_vtime_ratio"]
    assert out["pull_msg_ratio"] >= 2.0, out["pull_msg_ratio"]
    assert out["pull_vtime_ratio"] >= 2.0, out["pull_vtime_ratio"]
    # Each optimisation alone helps its own scenario.
    res = out["results"]
    assert res["cache"]["walk"]["messages"] < res["off"]["walk"]["messages"]
    assert res["batch"]["pull"]["messages"] < res["off"]["pull"]["messages"]
    assert res["cache"]["walk"]["name_cache_hit_rate"] > 0.5
    assert res["batch"]["pull"]["pipelined_rounds"] >= 1
    # Adaptive readahead (window floor 1, cap 8) earns back the fixed
    # window's message savings on a sequential scan; the ramp from 1 may
    # cost a handful of extra fetch messages but no more.
    assert res["adaptive"]["scan"]["messages"] < res["off"]["scan"]["messages"]
    assert (res["adaptive"]["scan"]["messages"]
            <= res["both"]["scan"]["messages"] + 4)


@pytest.mark.benchmark(group="T14")
def test_t14_determinism(benchmark):
    """Identical seeds give identical traces under the full optimisation
    set — the batching and pipelining stay deterministic."""
    def _twice():
        a = _walk_metrics(dict(COMBOS[3][1]))
        b = _walk_metrics(dict(COMBOS[3][1]))
        return {"equal": (a["vtime"] == b["vtime"]
                          and a["messages"] == b["messages"]
                          and a["by_type"] == b["by_type"])}
    out = run_experiment(benchmark, _twice)
    assert out["equal"]


if __name__ == "__main__":
    out = _experiment()
    baseline = {
        "experiment": "T14 hot-path ablation",
        "combos": {label: out["results"][label] for label, __ in COMBOS},
        "ratios": {k: round(out[k], 3) for k in
                   ("walk_msg_ratio", "walk_vtime_ratio",
                    "pull_msg_ratio", "pull_vtime_ratio")},
    }
    json.dump(baseline, sys.stdout, indent=2, default=str)
    print()
