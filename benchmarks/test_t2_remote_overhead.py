"""T2 — section 2.2.1 footnote: "In the LOCUS system, which is highly
optimized for remote access, the cpu overhead of accessing a remote page is
twice local access, and the cost of a remote open is significantly more than
the case when the entire open can be done locally."

We measure processing cost (CPU + disk service charged at the sites; wire
propagation excluded) for page access and for opens, local vs remote.
"""

import pytest

from repro import LocusCluster, Mode
from _harness import Measure, print_table, run_experiment


def _page_cost(cluster, us, gfile, mode=Mode.READ):
    fs = cluster.site(us).fs
    handle = cluster.call(us, fs.open_gfile(gfile, mode))
    cluster.site(us).cache.invalidate_file(*gfile)   # cold page
    m = Measure(cluster)
    cluster.call(us, fs.read(handle, 0, cluster.config.cost.page_size))
    cost = m.done()["cpu_total"]
    cluster.call(us, fs.close(handle))
    return cost


def _open_cost(cluster, us, gfile):
    fs = cluster.site(us).fs
    m = Measure(cluster)
    handle = cluster.call(us, fs.open_gfile(gfile, Mode.READ))
    cost = m.done()["cpu_total"]
    cluster.call(us, fs.close(handle))
    return cost


def _experiment():
    cluster = LocusCluster(n_sites=3, seed=4)
    psz = cluster.config.cost.page_size
    sh0, sh2 = cluster.shell(0), cluster.shell(2)
    sh0.write_file("/local", b"L" * psz)             # at site 0 (CSS too)
    sh2.write_file("/remote", b"R" * psz)            # at site 2
    cluster.settle()
    g_local = (0, sh0.stat("/local")["ino"])
    g_remote = (0, sh0.stat("/remote")["ino"])

    # Cold caches for fair disk accounting.
    for s in cluster.sites:
        s.cache.clear()
    local_page = _page_cost(cluster, 0, g_local)
    for s in cluster.sites:
        s.cache.clear()
    remote_page = _page_cost(cluster, 0, g_remote)

    local_open = _open_cost(cluster, 0, g_local)
    remote_open = _open_cost(cluster, 1, g_remote)   # US, CSS, SS distinct

    return {
        "local_page": local_page,
        "remote_page": remote_page,
        "page_ratio": remote_page / local_page,
        "local_open": local_open,
        "remote_open": remote_open,
        "open_ratio": remote_open / local_open,
    }


@pytest.mark.benchmark(group="T2")
def test_t2_remote_access_overhead(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T2: processing cost, local vs remote (section 2.2.1 footnote)",
        ["operation", "local", "remote", "remote/local"],
        [
            ["page access", out["local_page"], out["remote_page"],
             out["page_ratio"]],
            ["open", out["local_open"], out["remote_open"],
             out["open_ratio"]],
        ])
    # "the cpu overhead of accessing a remote page is twice local access"
    assert 1.6 <= out["page_ratio"] <= 2.6, out["page_ratio"]
    # "the cost of a remote open is significantly more"
    assert out["open_ratio"] > 3.0, out["open_ratio"]
