"""T11 — sections 4.1/4.2: detection of conflicting updates.

"Upon merge, conflicts are reliably detected" by version vectors, and
single-sided updates are *not* reported as conflicts (the f/f1 example).
We regenerate detection quality: precision and recall must both be 1.0
across partition scenarios.
"""

import pytest

from repro import LocusCluster
from repro.workloads.generators import build_tree, divergent_updates
from _harness import print_table, run_experiment


def _case(n_files, n_conflicts, n_left_only, seed):
    cluster = LocusCluster(n_sites=2, seed=seed)
    sh0, sh1 = cluster.shell(0), cluster.shell(1)
    paths = build_tree(sh0, n_dirs=2, files_per_dir=n_files // 2,
                       file_size=128, copies=2)
    cluster.settle()
    cluster.partition({0}, {1})
    conflicting, left_only = divergent_updates(
        cluster, sh0, sh1, paths, n_conflicts, n_left_only)
    t0 = cluster.sim.now
    cluster.heal()
    cluster.settle()
    recovery_time = cluster.sim.now - t0

    detected = set()
    for path in paths:
        attrs = sh0.stat(path)
        if attrs["conflict"]:
            detected.add(path)
    expected = set(conflicting)
    true_pos = len(detected & expected)
    precision = true_pos / len(detected) if detected else 1.0
    recall = true_pos / len(expected) if expected else 1.0

    # Non-conflicting left-only updates propagated cleanly.
    for path in left_only:
        assert sh1.read_file(path) == b"only-left " + path.encode()
    return [n_files, n_conflicts, n_left_only, precision, recall,
            recovery_time]


def _experiment():
    return {"rows": [
        _case(10, 0, 5, seed=130),
        _case(10, 3, 3, seed=131),
        _case(20, 8, 6, seed=132),
    ]}


@pytest.mark.benchmark(group="T11")
def test_t11_conflict_detection_quality(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T11: partitioned-update conflict detection (version vectors)",
        ["files", "conflicting", "left-only", "precision", "recall",
         "recovery vtime"],
        out["rows"])
    for row in out["rows"]:
        assert row[3] == 1.0, f"false conflict reported: {row}"
        assert row[4] == 1.0, f"missed conflict: {row}"
