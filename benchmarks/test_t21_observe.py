"""T21 — load accounting is free; blame tables and detection latency.

Three claims behind the ISSUE-10 measurement layer (the prerequisite for
handing the CSS role off on load — see docs/OBSERVABILITY.md):

(a) **Accounting is free.**  Like tracing (T17), the load accountants,
    hotness sketches and the convergence monitor are observational only:
    the T14 remote-walk and the T16 fault storm must report *identical*
    virtual time and per-type message counts with
    ``CostModel.load_accounting`` on and off.  The acceptance bound is a
    <5% virtual-time delta; the expected delta is exactly zero.

(b) **The blame table accounts for (almost) everything.**  The
    critical-path analyzer must attribute >=95% of total syscall latency
    on the T14 walk into its queue / wire / remote-service / local
    segments; the decomposition covers the tree by construction, so the
    expected coverage is exactly 1.0.

(c) **Detection latency is measurable.**  For a planted divergence —
    commit notifies dropped by the fault injector, leaving stale
    replicas — the scrub sweep must record a positive divergence
    detection latency (fault vtime → scrub classification vtime) in the
    convergence monitor, and the repair must follow.

``python benchmarks/test_t21_observe.py`` merges a ``t21`` section into
BENCH_observe.json (the T17 sections are left as-is).
"""

import json
import os
import sys

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import LocusError
from repro.faults import FaultPlan
from repro.obs.critpath import analyze
from repro.obs.load import format_top, load_records
from _harness import Measure, print_table, run_experiment

DEPTH = 3
FANOUT = 60
REPEATS = 20

STORM_SEED = 11
PAGE = 1024
CONTENT = bytes((i * 13) % 256 for i in range(4 * PAGE))
READS = 150
READ_INTERVAL = 15.0
WRITES = 30
WRITE_INTERVAL = 150.0


# -- scenario (a): T14 walk and T16 storm, accounting on vs off ------------

def _walk_cluster(load_accounting):
    cost = CostModel().with_overrides(load_accounting=load_accounting)
    cluster = LocusCluster(n_sites=2, seed=23, root_pack_sites=[0],
                           cost=cost)
    sh0 = cluster.shell(0)
    path = ""
    for d in range(DEPTH):
        path += f"/dir{d}"
        sh0.mkdir(path)
        for i in range(FANOUT):
            sh0.write_file(f"{path}/entry-{i:04d}", b"")
    leaf = path + "/leaf"
    sh0.write_file(leaf, b"L" * 2048)
    cluster.settle()
    sh1 = cluster.shell(1)
    sh1.stat(leaf)
    m = Measure(cluster)
    for __ in range(REPEATS):
        sh1.stat(leaf)
    out = m.done()
    return cluster, out


def _walk_metrics(load_accounting):
    __, out = _walk_cluster(load_accounting)
    return out


def _storm_metrics(load_accounting, seed=STORM_SEED):
    cost = CostModel().with_overrides(load_accounting=load_accounting)
    cluster = LocusCluster(n_sites=3, seed=seed, root_pack_sites=[1, 2],
                           cost=cost)
    setup = cluster.shell(0)
    setup.setcopies(2)
    setup.write_file("/hot", CONTENT)
    setup.write_file("/w", b"w" * 256)
    cluster.settle()
    t0 = cluster.sim.now
    cluster.inject(FaultPlan(seed=seed, name="t21-storm")
                   .crash(t0 + 300.0, site=1)
                   .loss_burst(t0 + 1200.0, rate=0.08, duration=300.0)
                   .restart(t0 + 2000.0, site=1)
                   .heal(t0 + 2600.0)
                   .crash(t0 + 3200.0, site=2)
                   .latency_spike(t0 + 3600.0, delta=5.0, duration=400.0,
                                  src=0, dst=1)
                   .restart(t0 + 4800.0, site=2)
                   .heal(t0 + 5400.0)
                   .drop("fs.read_page", count=2, after_messages=600))

    api = cluster.shell(0).api

    def reader():
        for __ in range(READS):
            try:
                yield from api.read_file("/hot")
            except LocusError:
                pass
            yield READ_INTERVAL

    def writer():
        for i in range(WRITES):
            try:
                yield from api.write_file("/w", bytes([i % 251]) * 256)
            except LocusError:
                pass
            yield WRITE_INTERVAL

    m = Measure(cluster)
    cluster.spawn(0, reader())
    cluster.spawn(0, writer())
    cluster.settle(max_time=40_000.0)
    out = m.done()
    out["load_records"] = len(load_records(cluster))
    monitor = cluster.convergence
    out["convergence_events"] = (len(monitor.events)
                                 if monitor.enabled else 0)
    return out


# -- scenario (b): blame coverage on the walk ------------------------------

def _blame_metrics():
    cluster, walk = _walk_cluster(True)
    report = analyze(cluster.tracer)
    return {
        "vtime": walk["vtime"],
        "roots": report.root_count,
        "coverage": round(report.coverage, 6),
        "segment_totals": {k: round(v, 6)
                           for k, v in report.segment_totals.items()},
        "syscalls": {name: blame.to_dict()
                     for name, blame in sorted(report.syscalls.items())},
    }


# -- scenario (c): planted divergence, detection latency -------------------

def _detection_metrics(seed=31):
    cluster = LocusCluster(n_sites=3, seed=seed, cost=CostModel())
    sh = cluster.shell(0)
    sh.setcopies(3)
    sh.write_file("/f", b"base content " * 40)
    cluster.settle()
    # The injector stamps the fault vtime; the dropped commit notifies
    # leave the other replicas stale.
    t0 = cluster.sim.now
    cluster.inject(FaultPlan(seed=seed, name="t21-divergence")
                   .drop("fs.notify", count=2, at=t0 + 10.0))
    sh.write_file("/f", b"newer content " * 40)
    cluster.settle()
    gfs = 0
    css = cluster.site(0).fs.mount.css_for(gfs)
    cluster.site(css).scrub.schedule(gfs)
    cluster.settle()
    monitor = cluster.convergence
    summary = monitor.summary()
    latencies = [e["latency"] for e in monitor.detections()
                 if e["latency"] is not None]
    return {
        "vtime": round(cluster.sim.now, 2),
        "faults": summary["faults"],
        "detections": summary["detections"],
        "repairs": summary["repairs"],
        "detection_latency": summary["detection_latency"],
        "min_latency": min(latencies) if latencies else None,
    }


# -- pytest entry points ---------------------------------------------------

@pytest.mark.benchmark(group="T21")
def test_t21_accounting_parity_walk(benchmark):
    """T14 walk: load accounting on/off changes nothing measurable."""
    def _ab():
        on = _walk_metrics(True)
        off = _walk_metrics(False)
        return {"on_vtime": on["vtime"], "off_vtime": off["vtime"],
                "on_msgs": on["messages"], "off_msgs": off["messages"],
                "on_by_type": on["by_type"], "off_by_type": off["by_type"]}
    out = run_experiment(benchmark, _ab)
    print_table(
        f"T21: {REPEATS} remote walks, load accounting on vs off",
        ["config", "vtime", "messages"],
        [["accounting on", out["on_vtime"], out["on_msgs"]],
         ["accounting off", out["off_vtime"], out["off_msgs"]]])
    delta = abs(out["on_vtime"] - out["off_vtime"]) / out["off_vtime"]
    assert delta < 0.05, delta
    # Expected: exactly zero — accounting is purely observational.
    assert out["on_vtime"] == out["off_vtime"]
    assert out["on_by_type"] == out["off_by_type"]


@pytest.mark.benchmark(group="T21")
def test_t21_accounting_parity_storm(benchmark):
    """T16 storm: zero vtime/message delta even under faults."""
    def _ab():
        on = _storm_metrics(True)
        off = _storm_metrics(False)
        return {"on_vtime": on["vtime"], "off_vtime": off["vtime"],
                "on_by_type": on["by_type"], "off_by_type": off["by_type"],
                "on_records": on["load_records"],
                "off_records": off["load_records"],
                "on_events": on["convergence_events"]}
    out = run_experiment(benchmark, _ab)
    print_table(
        f"T21: storm seed {STORM_SEED}, load accounting on vs off",
        ["config", "vtime", "load records"],
        [["accounting on", out["on_vtime"], out["on_records"]],
         ["accounting off", out["off_vtime"], out["off_records"]]])
    assert out["on_vtime"] == out["off_vtime"]
    assert out["on_by_type"] == out["off_by_type"]
    # On: the export stream gains load/detection records; off: none.
    assert out["on_records"] > 0
    assert out["off_records"] == 0
    # The storm's recovery repairs show up as convergence events.
    assert out["on_events"] > 0


@pytest.mark.benchmark(group="T21")
def test_t21_blame_coverage(benchmark):
    """>=95% of walk syscall latency lands in a named segment."""
    out = run_experiment(benchmark, _blame_metrics)
    print_table(
        "T21: walk blame decomposition",
        ["segment", "vtime"],
        sorted(out["segment_totals"].items(), key=lambda kv: -kv[1]))
    assert out["roots"] > 0
    assert out["coverage"] >= 0.95
    # stat is remote: the wire + remote service must dominate local work.
    totals = out["segment_totals"]
    assert totals["wire"] + totals["remote_service"] > 0


@pytest.mark.benchmark(group="T21")
def test_t21_detection_latency(benchmark):
    """Planted divergence: scrub detection latency is recorded."""
    out = run_experiment(benchmark, _detection_metrics)
    print_table(
        "T21: planted divergence (dropped notifies) detection",
        ["faults", "detections", "repairs", "latency p50"],
        [[out["faults"], out["detections"], out["repairs"],
          out["detection_latency"]["p50"]]])
    assert out["faults"] > 0
    assert out["detections"] > 0
    assert out["repairs"] > 0
    assert out["detection_latency"]["count"] > 0
    assert out["min_latency"] is not None and out["min_latency"] > 0


@pytest.mark.benchmark(group="T21")
def test_t21_top_report_deterministic(benchmark):
    """The ``cli top`` report is byte-identical for the same seed."""
    from repro.cli import _top_workload

    def _twice():
        a, __ = _top_workload(seed=5, sites=3, ops=40)
        b, __ = _top_workload(seed=5, sites=3, ops=40)
        return {"equal": format_top(a) == format_top(b),
                "lines": len(format_top(a).splitlines())}
    out = run_experiment(benchmark, _twice)
    assert out["equal"]
    assert out["lines"] > 10


# -- baseline refresh ------------------------------------------------------

def _experiment():
    walk_on = _walk_metrics(True)
    walk_off = _walk_metrics(False)
    storm_on = _storm_metrics(True)
    storm_off = _storm_metrics(False)
    return {
        "t14_walk_parity": {
            "on": {k: walk_on[k] for k in ("vtime", "messages")},
            "off": {k: walk_off[k] for k in ("vtime", "messages")},
            "vtime_delta": abs(walk_on["vtime"] - walk_off["vtime"]),
            "message_delta": walk_on["messages"] - walk_off["messages"],
        },
        "t16_storm_parity": {
            "on": {k: storm_on[k] for k in ("vtime", "messages")},
            "off": {k: storm_off[k] for k in ("vtime", "messages")},
            "vtime_delta": abs(storm_on["vtime"] - storm_off["vtime"]),
            "message_delta": storm_on["messages"] - storm_off["messages"],
            "load_records": storm_on["load_records"],
            "convergence_events": storm_on["convergence_events"],
        },
        "blame": _blame_metrics(),
        "detection": _detection_metrics(),
    }


if __name__ == "__main__":
    here = os.path.dirname(os.path.abspath(__file__))
    target = os.path.join(os.path.dirname(here), "BENCH_observe.json")
    baseline = {}
    if os.path.exists(target):
        with open(target) as fh:
            baseline = json.load(fh)
    baseline["t21"] = {
        "experiment": "T21 load accounting overhead, blame coverage, "
                      "detection latency",
        **_experiment(),
    }
    with open(target, "w") as fh:
        json.dump(baseline, fh, indent=2, default=str)
        fh.write("\n")
    json.dump(baseline["t21"], sys.stdout, indent=2, default=str)
    print()
