"""T7 — section 4.4: reconciliation of a distributed hierarchical directory.

Series: reconciliation cost vs directory size and conflicting-update count;
correctness: the merged directory is exactly the union of both partitions'
surviving operations (no lost updates — the property the paper demands of
any merge procedure).
"""

import pytest

from repro import LocusCluster
from _harness import Measure, print_table, run_experiment


def _run_case(n_left, n_right, n_name_conflicts):
    cluster = LocusCluster(n_sites=2, seed=90)
    sh0, sh1 = cluster.shell(0), cluster.shell(1)
    sh0.setcopies(2)
    sh0.mkdir("/proj")
    cluster.settle()
    cluster.partition({0}, {1})
    for i in range(n_left):
        sh0.write_file(f"/proj/left{i}", b"L")
    for i in range(n_right):
        sh1.write_file(f"/proj/right{i}", b"R")
    for i in range(n_name_conflicts):
        sh0.write_file(f"/proj/clash{i}", b"from left")
        sh1.write_file(f"/proj/clash{i}", b"from right")
    t0 = cluster.sim.now
    m = Measure(cluster)
    cluster.heal()
    cluster.settle()
    metrics = m.done()
    merge_time = cluster.sim.now - t0

    names = set(sh0.readdir("/proj"))
    expected = n_left + n_right + 2 * n_name_conflicts
    assert len(names) == expected, (len(names), expected)
    assert names == set(sh1.readdir("/proj"))
    for i in range(n_left):
        assert f"left{i}" in names
    for i in range(n_right):
        assert f"right{i}" in names
    return [f"{n_left}+{n_right}", n_name_conflicts, merge_time,
            metrics["messages"]]


def _experiment():
    return {"rows": [
        _run_case(5, 5, 0),
        _run_case(20, 20, 0),
        _run_case(20, 20, 5),
        _run_case(50, 50, 10),
    ]}


@pytest.mark.benchmark(group="T7")
def test_t7_directory_reconciliation(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T7: directory merge after partition (no updates lost, "
        "name conflicts renamed)",
        ["inserts L+R", "name conflicts", "merge vtime", "messages"],
        out["rows"])
    times = [row[2] for row in out["rows"]]
    # Cost grows with the amount of divergence, roughly linearly: 5x the
    # entries should not cost 25x the time.
    assert times[-1] < 25 * max(times[0], 1.0)
