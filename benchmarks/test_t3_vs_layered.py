"""T3 — section 2.1: "When resources are remote, access cost is higher, but
dramatically better than traditional layered file transfer and remote
terminal protocols permit."

A client touches k pages of a 50-page remote file.  LOCUS pages across just
what is touched; the layered baseline stages the whole file through an
ISO-style protocol stack first.  The shape to reproduce: LOCUS wins hugely
for sparse access and stays ahead even when the entire file is read.
"""

import pytest

from repro import LocusCluster
from repro.baselines.layered import LayeredTransferService
from _harness import print_table, run_experiment

FILE_PAGES = 50


def _experiment():
    cluster = LocusCluster(n_sites=2, seed=5)
    service = LayeredTransferService(cluster)
    psz = cluster.config.cost.page_size
    sh1 = cluster.shell(1)
    sh1.write_file("/big", b"B" * (FILE_PAGES * psz))
    cluster.settle()
    gfile = (0, sh1.stat("/big")["ino"])
    sh0 = cluster.shell(0)

    rows = []
    for touched in (1, 5, 10, 25, 50):
        pages = list(range(0, FILE_PAGES, FILE_PAGES // touched))[:touched]
        # LOCUS: open remotely, read just the touched pages.
        cluster.site(0).cache.invalidate_file(*gfile)
        t0 = cluster.sim.now
        fd = sh0.open("/big")
        for p in pages:
            sh0.pread(fd, p * psz, psz)
        sh0.close(fd)
        locus_time = cluster.sim.now - t0
        # Layered: stage whole file, touch locally.
        t1 = cluster.sim.now
        cluster.call(0, service.remote_session(0, 1, gfile,
                                               touch_pages=pages))
        layered_time = cluster.sim.now - t1
        rows.append([touched, locus_time, layered_time,
                     layered_time / locus_time])
    return {"rows": rows}


@pytest.mark.benchmark(group="T3")
def test_t3_locus_vs_layered_transfer(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        f"T3: remote access, LOCUS paging vs layered whole-file transfer "
        f"({FILE_PAGES}-page file)",
        ["pages touched", "LOCUS vtime", "layered vtime",
         "layered/LOCUS"],
        out["rows"])
    ratios = {row[0]: row[3] for row in out["rows"]}
    # Sparse access: dramatic advantage.
    assert ratios[1] > 10.0, ratios
    # Whole-file read: LOCUS still ahead (no layer stack, no staging copy).
    assert ratios[50] > 1.0, ratios
    # The advantage shrinks monotonically as more of the file is touched.
    touched = [row[0] for row in out["rows"]]
    rs = [row[3] for row in out["rows"]]
    assert all(a >= b for a, b in zip(rs, rs[1:])), rs
