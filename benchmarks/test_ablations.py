"""Ablations of the design choices DESIGN.md calls out.

A1  Readahead on sequential network reads (section 2.3.3) on/off.
A2  Delta propagation ("which explicit logical pages were modified",
    section 2.3.6) vs whole-file pulls.
A3  Asynchronous vs sequential merge polling (section 5.5: "sequential
    polling results in a large additive delay").
"""

import pytest

from repro import CostModel, LocusCluster
from _harness import Measure, print_table, run_experiment


def _sequential_read_time(readahead: bool, think: float = 25.0):
    """A scanning application: read a page, compute on it (think time),
    read the next — the pattern readahead exists for."""
    cluster = LocusCluster(n_sites=2, seed=150,
                           cost=CostModel(readahead=readahead))
    psz = cluster.config.cost.page_size
    sh1 = cluster.shell(1)
    sh1.write_file("/stream", b"s" * (16 * psz))
    cluster.settle()
    sh0 = cluster.shell(0)
    site0 = cluster.site(0)
    t0 = cluster.sim.now
    fd = sh0.open("/stream")
    for __ in range(16):
        sh0.read(fd, psz)
        cluster.call(0, site0.cpu(think))   # process the page
    sh0.close(fd)
    return cluster.sim.now - t0


def _propagation_traffic(delta: bool):
    cluster = LocusCluster(n_sites=3, seed=151,
                           cost=CostModel(delta_propagation=delta))
    psz = cluster.config.cost.page_size
    sh = cluster.shell(0)
    sh.setcopies(3)
    sh.write_file("/big", b"0" * (32 * psz))
    cluster.settle()
    m = Measure(cluster)
    fd = sh.open("/big", "w")
    sh.pwrite(fd, 0, b"x" * 32)    # one page of 32 touched
    sh.close(fd)
    cluster.settle()
    return m.done()["by_type"].get("fs.pull_read", 0)


def _merge_time(sequential: bool, n_sites: int = 8, far_latency: float = 30.0):
    cluster = LocusCluster(
        n_sites=n_sites, seed=152, root_pack_sites=[0, 1],
        cost=CostModel(merge_sequential_poll=sequential))
    # A spread-out network: every pair separated by a slow link.
    for a in range(n_sites):
        for b in range(n_sites):
            if a != b:
                cluster.net.extra_latency[(a, b)] = far_latency
    cluster.partition({0}, set(range(1, n_sites)))
    t0 = cluster.sim.now
    cluster.heal(merge_from=0)
    return cluster.sim.now - t0


def _divergence_after_concurrent_writers(enforce: bool):
    """Two sites open the same replicated file for modification at once;
    count the divergent (mutually inconsistent) files afterwards."""
    from repro.errors import EBUSY
    from repro.tools import fsck
    cluster = LocusCluster(n_sites=2, seed=153,
                           cost=CostModel(enforce_single_writer=enforce))
    sh0, sh1 = cluster.shell(0), cluster.shell(1)
    sh0.setcopies(2)
    sh0.write_file("/hot", b"base")
    cluster.settle()
    refused = 0
    fd0 = sh0.open("/hot", "w")
    sh0.pwrite(fd0, 0, b"writer-zero")
    try:
        fd1 = sh1.open("/hot", "w")
        sh1.pwrite(fd1, 0, b"writer-one!")
        sh1.close(fd1)
    except EBUSY:
        refused = 1
    sh0.close(fd0)
    cluster.settle()
    conflicts = len(fsck(cluster).version_conflicts)
    return conflicts, refused


def _pathname_messages(shipping: bool, depth: int = 6):
    """Messages to resolve a deep path whose directories all live remotely."""
    cluster = LocusCluster(n_sites=2, seed=154, root_pack_sites=[1],
                           cost=CostModel(pathname_shipping=shipping))
    sh1 = cluster.shell(1)
    path = ""
    for i in range(depth):
        path += f"/s{i}"
        sh1.mkdir(path)
    sh1.write_file(path + "/leaf", b"x")
    cluster.settle()
    fs0 = cluster.site(0).fs
    m = Measure(cluster)
    cluster.call(0, fs0.resolve_gfile(None, path + "/leaf"))
    return m.done()["messages"]


def _experiment():
    ra_on = _sequential_read_time(True)
    ra_off = _sequential_read_time(False)
    pulls_delta = _propagation_traffic(True)
    pulls_full = _propagation_traffic(False)
    merge_async = _merge_time(False)
    merge_seq = _merge_time(True)
    conflicts_on, refused_on = _divergence_after_concurrent_writers(True)
    conflicts_off, __ = _divergence_after_concurrent_writers(False)
    ship_on = _pathname_messages(True)
    ship_off = _pathname_messages(False)
    return {
        "ra_on": ra_on, "ra_off": ra_off,
        "pulls_delta": pulls_delta, "pulls_full": pulls_full,
        "merge_async": merge_async, "merge_seq": merge_seq,
        "conflicts_on": conflicts_on, "refused_on": refused_on,
        "conflicts_off": conflicts_off,
        "ship_on": ship_on, "ship_off": ship_off,
    }


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "Ablations",
        ["design choice", "as designed", "ablated", "ablated/designed"],
        [
            ["A1 readahead (16-page remote scan, vtime)",
             out["ra_on"], out["ra_off"], out["ra_off"] / out["ra_on"]],
            ["A2 delta propagation (pages pulled, 1/32 dirty)",
             out["pulls_delta"], out["pulls_full"],
             out["pulls_full"] / max(1, out["pulls_delta"])],
            ["A3 async merge polling (8 slow sites, vtime)",
             out["merge_async"], out["merge_seq"],
             out["merge_seq"] / out["merge_async"]],
            ["A4 CSS single-writer policy (divergent files)",
             out["conflicts_on"], out["conflicts_off"],
             float(out["conflicts_off"] - out["conflicts_on"])],
            ["A5 pathname shipping (msgs, 7-deep remote path)",
             out["ship_on"], out["ship_off"],
             out["ship_off"] / max(1, out["ship_on"])],
        ])
    # Readahead overlaps wire time with processing on sequential scans.
    assert out["ra_off"] > 1.2 * out["ra_on"]
    # Delta propagation pulls 2 pages (one per lagging copy) instead of 64.
    assert out["pulls_delta"] == 2
    assert out["pulls_full"] == 64
    # Asynchronous polling dominates on spread-out networks.
    assert out["merge_seq"] > 2 * out["merge_async"]
    # With the CSS policy: second writer refused, no divergence.  Without
    # it: concurrent writers leave mutually inconsistent copies *within*
    # one partition — the complexity the CSS exists to prevent.
    assert out["conflicts_on"] == 0 and out["refused_on"] == 1
    assert out["conflicts_off"] >= 1
    # Pathname shipping (the extension section 2.3.4 was investigating)
    # avoids the per-component directory page traffic.
    assert out["ship_on"] < out["ship_off"] / 2
