"""F1 — Figure 1: processing a system call requiring foreign service.

The figure shows the timeline: initial system call processing and message
setup at the requesting site, transmission, message analysis and system-call
continuation at the serving site, the return message, and completion back at
the requester.  We regenerate the same decomposition for a remote ``open``
followed by one page read, reporting where the time goes.
"""

import sys

import pytest

from repro import LocusCluster, Mode
from _harness import Measure, print_table, run_experiment


def _experiment():
    cluster = LocusCluster(n_sites=2, seed=1)
    serving = cluster.shell(1)
    serving.write_file("/foreign", b"f" * 512)      # stored at site 1 only
    cluster.settle()
    gfile = (0, serving.stat("/foreign")["ino"])

    fs0 = cluster.site(0).fs
    m = Measure(cluster)
    handle = cluster.call(0, fs0.open_gfile(gfile, Mode.READ))
    data = cluster.call(0, fs0.read(handle, 0, 512))
    cluster.call(0, fs0.close(handle))
    metrics = m.done()
    assert data == b"f" * 512

    requesting_cpu = metrics["cpu"][0]
    serving_cpu = metrics["cpu"][1]
    wire_time = metrics["vtime"] - requesting_cpu - serving_cpu
    return {
        "requesting_site_cpu": requesting_cpu,
        "serving_site_cpu": serving_cpu,
        "wire_time": wire_time,
        "total_vtime": metrics["vtime"],
        "messages": metrics["messages"],
        "by_type": metrics["by_type"],
    }


@pytest.mark.benchmark(group="F1")
def test_f1_remote_syscall_timeline(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "Figure 1: one open+read+close requiring foreign service",
        ["phase", "virtual time"],
        [
            ["requesting site processing", out["requesting_site_cpu"]],
            ["network transmission", out["wire_time"]],
            ["serving site processing", out["serving_site_cpu"]],
            ["total elapsed", out["total_vtime"]],
        ])
    print_table("message sequence", ["message", "count"],
                sorted(out["by_type"].items()))
    # The kernel sleeps while the serving site works: both sites contribute
    # real processing, plus wire time; nothing is free.
    assert out["requesting_site_cpu"] > 0
    assert out["serving_site_cpu"] > 0
    assert out["wire_time"] > 0
    # open (2: CSS local at US? no — CSS is site 0, file at 1: CSS->SS poll
    # = 2 msgs) + read (2) + close (4-msg chain collapses: CSS at US side).
    assert out["messages"] >= 6
