"""T8 — section 3.2: the shared-descriptor token mechanism.

"While in the worst case, performance is limited by the speed at which the
tokens and their associated resources can be flipped back and forth among
processes on different machines, such extreme behavior is exceedingly rare.
Virtually all processes read and write substantial amounts of data per
system call.  As a result, most collections of Unix processes designed to
execute on a single machine run very well when distributed on LOCUS."

We regenerate both regimes: two processes on two sites alternating tiny
reads on one shared descriptor (worst case) vs the same total data moved in
large reads (the common case).
"""

import pytest

from repro import LocusCluster
from _harness import Measure, print_table, run_experiment

TOTAL_BYTES = 2048


def _alternating(chunk):
    cluster = LocusCluster(n_sites=2, seed=100)
    sh = cluster.shell(0)
    sh.write_file("/stream", b"s" * TOTAL_BYTES)
    cluster.settle()
    fd = sh.open("/stream")
    consumed = []

    def child(api, cfd, n):
        data = yield from api.read(cfd, n)
        consumed.append(data)
        return 0

    m = Measure(cluster)
    t0 = cluster.sim.now
    remaining = TOTAL_BYTES
    while remaining > 0:
        got = sh.read(fd, chunk)               # parent at site 0
        remaining -= len(got)
        if remaining <= 0:
            break
        sh.fork(child, args=(fd, chunk), dest=1)   # child at site 1
        sh.wait()
        remaining -= chunk
    metrics = m.done()
    elapsed = cluster.sim.now - t0
    sh.close(fd)
    token_msgs = sum(v for k, v in metrics["by_type"].items()
                     if k.startswith("proc.token"))
    return elapsed, token_msgs


def _experiment():
    rows = []
    for chunk, label in ((16, "16 B (worst case ping-pong)"),
                         (128, "128 B"),
                         (1024, "1 KiB (substantial per call)")):
        elapsed, token_msgs = _alternating(chunk)
        rows.append([label, elapsed, token_msgs,
                     elapsed / TOTAL_BYTES * 1000])
    return {"rows": rows}


@pytest.mark.benchmark(group="T8")
def test_t8_token_flipping(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        f"T8: shared file descriptor across 2 sites, {TOTAL_BYTES} bytes "
        f"total",
        ["bytes per syscall", "vtime", "token messages",
         "vtime per KB"],
        out["rows"])
    per_kb = [row[3] for row in out["rows"]]
    tokens = [row[2] for row in out["rows"]]
    # Worst-case flipping is far slower per byte than substantial reads...
    assert per_kb[0] > 10 * per_kb[-1], per_kb
    # ...because the token (and its open) crosses the network per syscall.
    assert tokens[0] > 10 * max(tokens[-1], 1), tokens
