"""T4 — section 2.2.1: replication improves read performance (a copy near
the reader) and availability (survival under site failures); update cost
grows with the replication factor.

Three series over replication factor 1..4 on a 4-site network:
  * read latency at a site that may or may not hold a copy,
  * fraction of files still readable under every single-site failure,
  * update (write+commit+propagate) cost.
"""

import pytest

from repro import LocusCluster
from repro.errors import FsError, NetworkError
from _harness import print_table, run_experiment

N_SITES = 4


def _experiment():
    size = 8192
    rows = []
    for rf in (1, 2, 3, 4):
        cluster = LocusCluster(n_sites=N_SITES, seed=60 + rf)
        sh0 = cluster.shell(0)
        sh0.setcopies(rf)
        sh0.write_file("/data", b"d" * size)
        cluster.settle()

        # Read latency at the last site (holds a copy only at rf=4).
        reader = cluster.shell(N_SITES - 1)
        t0 = cluster.sim.now
        assert len(reader.read_file("/data")) == size
        read_latency = cluster.sim.now - t0

        # Availability: for each single-site crash, is the file readable
        # from some surviving site?
        survivals = 0
        trials = 0
        for dead in range(N_SITES):
            probe_cluster = LocusCluster(n_sites=N_SITES, seed=60 + rf)
            psh = probe_cluster.shell(0)
            psh.setcopies(rf)
            psh.write_file("/data", b"d" * size)
            probe_cluster.settle()
            probe_cluster.fail_site(dead)
            alive = [s for s in range(N_SITES) if s != dead]
            try:
                data = probe_cluster.shell(alive[0]).read_file("/data")
                survivals += len(data) == size
            except (FsError, NetworkError):
                pass
            trials += 1
        availability = survivals / trials

        # Update cost: write and let propagation finish.
        t1 = cluster.sim.now
        sh0.write_file("/data", b"e" * size)
        cluster.settle()
        update_cost = cluster.sim.now - t1

        rows.append([rf, read_latency, availability, update_cost])
    return {"rows": rows}


@pytest.mark.benchmark(group="T4")
def test_t4_replication_tradeoffs(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T4: replication factor tradeoffs (4 sites; reader at site 3)",
        ["copies", "remote-reader latency", "availability (1 crash)",
         "update+propagate vtime"],
        out["rows"])
    by_rf = {row[0]: row for row in out["rows"]}
    # Fully replicated: the reader has a local copy and reads faster — "in
    # a high speed local network it is still significant" (section 2.2.1);
    # readahead hides part of the remote latency, as in the real system.
    assert by_rf[4][1] < 0.8 * by_rf[1][1]
    # Availability rises monotonically with the replication factor.
    avail = [row[2] for row in out["rows"]]
    assert all(a <= b for a, b in zip(avail, avail[1:]))
    assert avail[-1] == 1.0
    # Updates get more expensive as more copies must be brought current.
    assert by_rf[4][3] > by_rf[1][3]
