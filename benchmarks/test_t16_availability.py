"""T16 — availability under a scripted fault storm: supervision ablation.

A diskless using site reads a replicated file at a steady pace while a
deterministic :class:`repro.faults.FaultPlan` storm crashes and restarts
both storage sites, loses messages, spikes latency and drops read traffic.
A light writer rewrites a second file throughout.

Two configurations:

* ``supervised`` — the default: per-op timeouts with bounded deterministic
  backoff on idempotent calls, and mid-call replica failover on the US
  read path (section 5.2 principle 3: reads continue on another copy).
* ``unsupervised`` — ``supervise_remote_ops=False``: the paper's bare
  virtual-circuit calls; a lost SS fails the whole syscall until
  reconfiguration substitutes a copy.

Metrics per seed: syscall completion rate, the longest gap between two
successful reads (time-to-recover), and the injector's invariant-checker
verdict after the storm's heals.  Acceptance: the supervised read path
completes >= 95% of syscalls on every seed and strictly beats the
unsupervised baseline; the same seed + plan replays an identical event
trace and read log.
"""

import json
import os
import sys

import pytest

from repro import LocusCluster
from repro.config import CostModel
from repro.errors import LocusError
from repro.faults import FaultPlan
from _harness import print_table, run_experiment

SEEDS = [11, 23, 47]
COMBOS = [
    ("supervised", {}),
    ("unsupervised", {"supervise_remote_ops": False}),
]

PAGE = 1024
CONTENT = bytes((i * 13) % 256 for i in range(4 * PAGE))    # 4 pages
READS = 150
READ_INTERVAL = 15.0
WRITES = 30
WRITE_INTERVAL = 150.0


def _env_flags():
    """The CI chaos-soak matrix re-runs the storm under
    ``LOCUS_COST_FLAGS`` (same syntax as tests/conftest.py).  Parsed here
    so BOTH combos share the base — tests/conftest.py only touches
    default-cost clusters and would skew the ablation otherwise."""
    defaults = CostModel()
    out = {}
    for part in os.environ.get("LOCUS_COST_FLAGS", "").split(","):
        part = part.strip()
        if not part:
            continue
        key, __, val = part.partition("=")
        key, val = key.strip(), (val.strip() or "1")
        current = getattr(defaults, key)     # unknown keys fail loudly
        if isinstance(current, bool):
            out[key] = val.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, int):
            out[key] = int(val)
        else:
            out[key] = float(val)
    return out


def _storm(seed, t0):
    """Crash/restart both storage sites, one loss burst, one latency
    spike, a message-count-triggered read drop, and two audited heals."""
    return (FaultPlan(seed=seed, name="availability-storm")
            .crash(t0 + 300.0, site=1)
            .loss_burst(t0 + 1200.0, rate=0.08, duration=300.0)
            .restart(t0 + 2000.0, site=1)
            .heal(t0 + 2600.0)
            .crash(t0 + 3200.0, site=2)
            .latency_spike(t0 + 3600.0, delta=5.0, duration=400.0,
                           src=0, dst=1)
            .restart(t0 + 4800.0, site=2)
            .heal(t0 + 5400.0)
            .drop("fs.read_page", count=2, after_messages=600))


def _run_storm(seed, flags):
    # Always explicit, so tests/conftest.py's default-cost shim never
    # applies twice and the two combos differ only in supervision.
    cost = CostModel().with_overrides(**{**_env_flags(), **flags})
    cluster = LocusCluster(n_sites=3, seed=seed,
                           root_pack_sites=[1, 2], cost=cost)
    setup = cluster.shell(0)
    setup.setcopies(2)
    setup.write_file("/hot", CONTENT)
    setup.write_file("/w", b"w" * 256)
    cluster.settle()
    t0 = cluster.sim.now
    inj = cluster.inject(_storm(seed, t0))

    sim = cluster.sim
    r_api = cluster.shell(0).api
    w_api = cluster.shell(0).api
    reads = []      # (start, end, ok)
    writes = []

    def reader():
        for __ in range(READS):
            started = sim.now
            try:
                data = yield from r_api.read_file("/hot")
                reads.append((started, sim.now, data == CONTENT))
            except LocusError:
                reads.append((started, sim.now, False))
            yield READ_INTERVAL

    def writer():
        for i in range(WRITES):
            try:
                yield from w_api.write_file("/w", bytes([i % 251]) * 256)
                writes.append(True)
            except LocusError:
                writes.append(False)
            yield WRITE_INTERVAL

    cluster.spawn(0, reader())
    cluster.spawn(0, writer())
    cluster.settle(max_time=40_000.0)

    ok_ends = [end for __, end, ok in reads if ok]
    gaps = [b - a for a, b in zip([t0] + ok_ends, ok_ends)]
    return {
        "attempts": len(reads),
        "completions": len(ok_ends),
        "completion_rate": round(len(ok_ends) / len(reads), 4),
        "max_recovery_gap": round(max(gaps), 2) if gaps else None,
        "write_attempts": len(writes),
        "write_completions": sum(writes),
        "violations": len(inj.violations),
        "trace_events": len(inj.trace),
        "storm_span": round(sim.now - t0, 1),
        "_trace": inj.trace,
        "_reads": reads,
    }


def _experiment():
    rows = []
    results = {}
    for label, flags in COMBOS:
        per_seed = {}
        for seed in SEEDS:
            m = _run_storm(seed, flags)
            per_seed[seed] = {k: v for k, v in m.items()
                              if not k.startswith("_")}
            rows.append([label, seed, m["completion_rate"],
                         m["max_recovery_gap"],
                         f"{m['write_completions']}/{m['write_attempts']}",
                         m["violations"]])
        results[label] = per_seed
    sup = [results["supervised"][s]["completion_rate"] for s in SEEDS]
    uns = [results["unsupervised"][s]["completion_rate"] for s in SEEDS]
    return {
        "rows": rows,
        "results": results,
        "supervised_min_rate": min(sup),
        "unsupervised_mean_rate": sum(uns) / len(uns),
        "supervised_mean_rate": sum(sup) / len(sup),
    }


@pytest.mark.benchmark(group="T16")
def test_t16_availability_ablation(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        f"T16: {READS} paced reads through a scripted fault storm",
        ["config", "seed", "completion", "max gap", "writes", "violations"],
        out["rows"])
    # Acceptance (ISSUE 3): the supervised read path rides through the
    # storm on every seed, and strictly beats the bare-circuit baseline.
    assert out["supervised_min_rate"] >= 0.95, out["supervised_min_rate"]
    assert out["supervised_mean_rate"] > out["unsupervised_mean_rate"]
    res = out["results"]
    for seed in SEEDS:
        sup, uns = res["supervised"][seed], res["unsupervised"][seed]
        assert sup["completion_rate"] > uns["completion_rate"], seed
        # The invariant checker ran after the heals and found the store
        # intact under supervision.
        assert sup["violations"] == 0, seed
        # Time-to-recover stays bounded: no outage ever exceeds a few
        # read periods even while a storage site is down.
        assert sup["max_recovery_gap"] <= 600.0, seed
    # On average supervision recovers at least as fast as waiting for the
    # reconfiguration protocol to substitute a copy.  One read period of
    # slack: batching flags shift individual read completion times by a
    # few vtime units without changing the recovery behaviour.
    sup_gap = sum(res["supervised"][s]["max_recovery_gap"]
                  for s in SEEDS) / len(SEEDS)
    uns_gap = sum(res["unsupervised"][s]["max_recovery_gap"]
                  for s in SEEDS) / len(SEEDS)
    assert sup_gap <= uns_gap + READ_INTERVAL, (sup_gap, uns_gap)


@pytest.mark.benchmark(group="T16")
def test_t16_determinism(benchmark):
    """The same seed + plan replays an identical fault trace AND an
    identical read log — the whole storm is reproducible."""
    def _twice():
        a = _run_storm(SEEDS[0], {})
        b = _run_storm(SEEDS[0], {})
        return {"equal": a["_trace"] == b["_trace"]
                and a["_reads"] == b["_reads"]}
    out = run_experiment(benchmark, _twice)
    assert out["equal"]


if __name__ == "__main__":
    out = _experiment()
    baseline = {
        "experiment": "T16 availability under scripted fault storm",
        "seeds": SEEDS,
        "reads_per_run": READS,
        "results": {label: {str(s): out["results"][label][s] for s in SEEDS}
                    for label, __ in COMBOS},
        "supervised_min_rate": out["supervised_min_rate"],
        "supervised_mean_rate": round(out["supervised_mean_rate"], 4),
        "unsupervised_mean_rate": round(out["unsupervised_mean_rate"], 4),
    }
    with open("BENCH_availability.json", "w") as fh:
        json.dump(baseline, fh, indent=2, default=str)
        fh.write("\n")
    json.dump(baseline, sys.stdout, indent=2, default=str)
    print()
