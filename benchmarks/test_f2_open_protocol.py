"""F2 — Figure 2: the open protocol and its optimized collapses.

The general open is four messages (US->CSS, CSS->SS, SS->CSS, CSS->US); each
role collapse removes messages, down to zero when all three logical sites
are one physical site.  The benchmark regenerates the message count for
every placement and the open latency alongside.
"""

import pytest

from repro import LocusCluster, Mode
from _harness import Measure, print_table, run_experiment


def _open_case(cluster, us, store_at, label):
    shell = cluster.shell(store_at)
    shell.setcopies(1)
    path = f"/file-{label}"
    shell.write_file(path, b"x")
    cluster.settle()
    gfile = (0, shell.stat(path)["ino"])
    fs = cluster.site(us).fs
    m = Measure(cluster)
    handle = cluster.call(us, fs.open_gfile(gfile, Mode.READ))
    metrics = m.done()
    cluster.call(us, fs.close(handle))
    cluster.settle()
    protocol_msgs = sum(v for k, v in metrics["by_type"].items()
                        if k.startswith(("fs.css_open", "fs.ss_open")))
    return {"label": label, "messages": protocol_msgs,
            "latency": metrics["vtime"]}


def _experiment():
    cluster = LocusCluster(n_sites=3, seed=2)   # CSS for the root fg: site 0
    cases = [
        # (using site, storage site, description)
        (0, 0, "US=CSS=SS (all local)"),
        (0, 1, "US=CSS, SS remote"),
        (1, 0, "CSS=SS, US remote"),
        (1, 1, "US=SS, CSS remote"),
        (1, 2, "general: US, CSS, SS distinct"),
    ]
    return {"rows": [_open_case(cluster, us, at, label)
                     for us, at, label in cases]}


@pytest.mark.benchmark(group="F2")
def test_f2_open_protocol_messages(benchmark):
    out = run_experiment(benchmark, _experiment)
    rows = out["rows"]
    print_table(
        "Figure 2: open protocol messages by role placement",
        ["placement", "messages", "open latency (vtime)"],
        [[r["label"], r["messages"], r["latency"]] for r in rows])
    by_label = {r["label"]: r for r in rows}
    assert by_label["US=CSS=SS (all local)"]["messages"] == 0
    assert by_label["US=CSS, SS remote"]["messages"] == 2
    assert by_label["CSS=SS, US remote"]["messages"] == 2
    assert by_label["US=SS, CSS remote"]["messages"] == 2
    assert by_label["general: US, CSS, SS distinct"]["messages"] == 4
    # Latency orders with message count.
    assert by_label["US=CSS=SS (all local)"]["latency"] < \
        by_label["US=CSS, SS remote"]["latency"] < \
        by_label["general: US, CSS, SS distinct"]["latency"]
