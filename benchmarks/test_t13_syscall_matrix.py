"""T13 — the [GOLD 83] measurement matrix.

"Measured performance results are presented in [GOLD 83]" (section 2.1).
That companion paper tabulated per-system-call costs, local vs remote.  We
regenerate the matrix on the simulator: every core call, measured in the
all-local placement and in the fully remote placement, with the paper's
qualitative ordering asserted (local cheap and roughly constant; remote
carrying exactly the protocol's message cost).
"""

import pytest

from repro import LocusCluster, Mode
from _harness import Measure, print_table, run_experiment


def _measure(cluster, us, gfile, op):
    fs = cluster.site(us).fs
    psz = cluster.config.cost.page_size

    if op == "open+close":
        m = Measure(cluster)
        handle = cluster.call(us, fs.open_gfile(gfile, Mode.READ))
        cluster.call(us, fs.close(handle))
        out = m.done()
        return out["vtime"], out["messages"]

    handle_mode = Mode.WRITE if op in ("write", "commit") else Mode.READ
    handle = cluster.call(us, fs.open_gfile(gfile, handle_mode))
    cluster.site(us).cache.invalidate_file(*gfile)
    m = Measure(cluster)
    if op == "read":
        cluster.call(us, fs.read(handle, 0, psz))
    elif op == "write":
        cluster.call(us, fs.write(handle, 0, b"w" * 100))
    elif op == "commit":
        cluster.call(us, fs.write(handle, 0, b"c" * 100))
        cluster.call(us, fs.commit(handle))
    out = m.done()
    cluster.call(us, fs.close(handle))
    cluster.settle()
    return out["vtime"], out["messages"]


def _experiment():
    cluster = LocusCluster(n_sites=3, seed=160)
    psz = cluster.config.cost.page_size
    sh0, sh2 = cluster.shell(0), cluster.shell(2)
    sh0.write_file("/local-subject", b"L" * psz)
    sh2.write_file("/remote-subject", b"R" * psz)
    cluster.settle()
    g_local = (0, sh0.stat("/local-subject")["ino"])
    g_remote = (0, sh0.stat("/remote-subject")["ino"])

    rows = []
    for op in ("open+close", "read", "write", "commit"):
        lt, lm = _measure(cluster, 0, g_local, op)
        rt, rm = _measure(cluster, 1, g_remote, op)   # US=1, CSS=0, SS=2
        rows.append([op, lt, lm, rt, rm, rt / max(lt, 0.001)])
    return {"rows": rows}


@pytest.mark.benchmark(group="T13")
def test_t13_syscall_cost_matrix(benchmark):
    out = run_experiment(benchmark, _experiment)
    print_table(
        "T13: per-syscall cost matrix ([GOLD 83] shape), local vs fully "
        "remote",
        ["syscall", "local vtime", "local msgs", "remote vtime",
         "remote msgs", "remote/local"],
        out["rows"])
    by_op = {row[0]: row for row in out["rows"]}
    # Local data-path operations move no messages; a local *commit* still
    # sends its version-vector notification to the other packs (§2.3.6).
    for op in ("open+close", "read", "write"):
        assert by_op[op][2] == 0, by_op[op]
    assert by_op["commit"][2] <= 2
    # Remote message counts are exactly the protocol sequences: open(4) +
    # close(4); read = 2; partial-page write = old-page read (2) + one
    # one-way write.
    assert by_op["open+close"][4] == 8
    assert by_op["read"][4] == 2
    assert by_op["write"][4] == 3
    # Reads/opens/commits cost more remotely, boundedly so; the remote
    # *write* can actually be latency-cheaper than local because the write
    # protocol is one-way ("no higher level response is necessary") — the
    # storage site's disk work happens after the caller continues.
    for op in ("open+close", "read", "commit"):
        assert 1.0 < by_op[op][5] < 60.0, by_op[op]
    assert by_op["write"][5] > 0.8