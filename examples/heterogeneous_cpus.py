#!/usr/bin/env python
"""Hidden directories: one command name, many machine types (section 2.4.1).

"In a LOCUS net containing both DEC PDP-11/45s and DEC VAX 750s, a user
would want to type the same command name on either type of machine and get
a similar service."  /bin/who is a hidden directory holding one load module
per cpu type; pathname search substitutes the process's machine-type
context, so the right module runs everywhere — including when the command
is transparently executed on a *remote* machine of a different type.
"""

from repro import LocusCluster


def who_vax(api):
    yield from api.write_file(
        f"/tmp/who-{api.getpid()}",
        f"who (VAX build) on site {api.site.site_id}\n".encode())
    return 0


def who_pdp(api):
    yield from api.write_file(
        f"/tmp/who-{api.getpid()}",
        f"who (PDP-11 build) on site {api.site.site_id}\n".encode())
    return 0


def main():
    cluster = LocusCluster(n_sites=3, seed=5)
    cluster.set_cpu_type(0, "vax")
    cluster.set_cpu_type(1, "pdp11")
    cluster.set_cpu_type(2, "vax")
    cluster.register_program("who.vax", who_vax)
    cluster.register_program("who.pdp11", who_pdp)

    admin = cluster.shell(0)
    admin.setcopies(3)
    admin.mkdir("/bin")
    admin.mkdir("/tmp")
    print("Creating /bin/who as a hidden directory with per-cpu entries...")
    admin.mkdir("/bin/who", hidden=True)
    admin.set_hidden_visible(True)          # the escape mechanism
    admin.install_program("/bin/who/vax", "who.vax", cpu="vax")
    admin.install_program("/bin/who/pdp11", "who.pdp11", cpu="pdp11")
    print("  escape view of /bin/who:", admin.readdir("/bin/who"))
    admin.set_hidden_visible(False)
    cluster.settle()

    print("\nRunning the *same* command name on each machine type:")
    for dest in (0, 1, 2):
        pid = admin.run("/bin/who", dest=dest)
        admin.wait()
        out = admin.read_file(f"/tmp/who-{pid}").decode().strip()
        cpu = cluster.site(dest).cpu_type
        print(f"  site {dest} ({cpu:6}): {out}")

    print("\nThe caller never said which build to use; pathname search "
          "matched the hidden directory against each executing site's "
          "machine-type context.")


if __name__ == "__main__":
    main()
