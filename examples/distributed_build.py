#!/usr/bin/env python
"""Transparent remote processes: a parallel "build" fanned out with run().

Paper section 3.1: "LOCUS permits one to execute programs at any site in
the network ... in a manner just as easy as executing the program locally",
and section 6: "the primary motivation for remote execution was load
balancing".  A coordinator compiles a project by running one worker per
source file on the least-loaded site, collecting results through a
network-wide pipe.
"""

from repro import LocusCluster

N_SITES = 4
SOURCES = [f"module{i}" for i in range(8)]


def compiler(api, source, out_dir, status_fd):
    """The 'compiler' load module: reads the source through the global
    filesystem, writes the object file, reports through a shared pipe."""
    src = yield from api.read_file(f"/src/{source}.c")
    obj = f"compiled[{len(src)} bytes] at site {api.site.site_id}\n".encode()
    yield from api.write_file(f"{out_dir}/{source}.o", obj)
    yield from api.write(status_fd,
                         f"{source}: ok@site{api.site.site_id}\n".encode())
    return 0


def least_loaded(cluster):
    """Pick the site with the fewest live processes, via the scheduler's
    least-loaded policy (the advice-list balancing of sections 3.1/6)."""
    return cluster.scheduler.advice("least_loaded")[0]


def main():
    cluster = LocusCluster(n_sites=N_SITES, seed=11)
    cluster.register_program("cc", compiler)

    sh = cluster.shell(0, user="builder")
    sh.setcopies(N_SITES)      # sources replicated: reads are always local
    sh.mkdir("/bin")
    sh.install_program("/bin/cc", "cc")
    sh.mkdir("/src")
    sh.mkdir("/obj")
    for name in SOURCES:
        sh.write_file(f"/src/{name}.c", (name + " source ") .encode() * 40)
    cluster.settle()

    print(f"Building {len(SOURCES)} modules across {N_SITES} sites...")
    status_r, status_w = sh.pipe()
    placements = {}
    for name in SOURCES:
        dest = least_loaded(cluster)
        placements[name] = dest
        # run(): a local fork and remote exec, with no parent-image copy.
        sh.run("/bin/cc", args=(name, "/obj", status_w), dest=dest)

    for __ in SOURCES:
        sh.wait()
    sh.close(status_w)

    report = sh.read(status_r, 1 << 16).decode()
    sh.close(status_r)
    print("status pipe collected:")
    for line in sorted(report.strip().splitlines()):
        print("   ", line)

    print("\nobject files (readable from any site):")
    reader = cluster.shell(N_SITES - 1)
    for name in sorted(reader.readdir("/obj")):
        print(f"    /obj/{name}: {reader.read_file('/obj/' + name).decode().strip()}")

    sites_used = sorted(set(placements.values()))
    print(f"\nworkers were placed on sites {sites_used} "
          f"(load balanced); the build script never mentioned a machine.")


if __name__ == "__main__":
    main()
