#!/usr/bin/env python
"""Nested transactions over replicated distributed files ([MEUL 83]).

A funds transfer touches two account files stored on different machines; a
nested sub-transaction applies a fee that can be rolled back independently.
The whole transfer commits or aborts as one unit — and a network partition
mid-transaction aborts the stranded work instead of leaving half a
transfer (section 5.6: "abort all related subtransactions in partition").
"""

from repro import LocusCluster
from repro.errors import TxAborted


def balance(shell, path):
    return int(shell.read_file(path).decode())


def main():
    cluster = LocusCluster(n_sites=3, seed=13)
    teller = cluster.shell(0, user="teller")
    # Two accounts, stored at two different sites.
    cluster.shell(1).write_file("/acct-a", b"1000")
    cluster.shell(2).write_file("/acct-b", b"0200")
    cluster.settle()
    a = (0, teller.stat("/acct-a")["ino"])
    b = (0, teller.stat("/acct-b")["ino"])
    tm = cluster.site(0).tx

    print("balances: a=%d b=%d" % (balance(teller, "/acct-a"),
                                   balance(teller, "/acct-b")))

    print("\n-- transfer 300 from a to b, with a nested fee that aborts --")
    tx = tm.begin()
    cluster.call(0, tm.write(tx, a, 0, b"0700"))     # 1000 - 300
    cluster.call(0, tm.write(tx, b, 0, b"0500"))     # 200 + 300
    fee = tm.begin(parent=tx)
    cluster.call(0, tm.write(fee, a, 0, b"0690"))    # a 10-unit fee...
    cluster.call(0, tm.abort(fee))                   # ...waived!
    cluster.call(0, tm.commit(tx))
    cluster.settle()
    print("after commit: a=%d b=%d (fee sub-transaction rolled back)"
          % (balance(teller, "/acct-a"), balance(teller, "/acct-b")))

    print("\n-- a transfer interrupted by a partition --")
    tx2 = tm.begin()
    cluster.call(0, tm.write(tx2, a, 0, b"0100"))
    cluster.call(0, tm.write(tx2, b, 0, b"1100"))
    print("   staged: a=0100 b=1100 (uncommitted)")
    print("   *** the network partitions: {0} | {1, 2} ***")
    cluster.partition({0}, {1, 2})
    print("   transaction state:", tx2.state.value)
    try:
        cluster.call(0, tm.commit(tx2))
    except TxAborted as exc:
        print(f"   commit refused: {exc}")
    cluster.heal()
    print("after heal: a=%d b=%d (no partial transfer survived)"
          % (balance(teller, "/acct-a"), balance(teller, "/acct-b")))


if __name__ == "__main__":
    main()
