#!/usr/bin/env python
"""Quickstart: a three-site LOCUS network and its single naming tree.

Demonstrates the heart of the paper: "a very high degree of network
transparency ... it makes the network of machines appear to users and
programs as a single computer; machine boundaries are completely hidden
during normal operation" (section 1).
"""

from repro import LocusCluster


def main():
    print("Booting a 3-site LOCUS network (one Ethernet, three VAXes)...")
    cluster = LocusCluster(n_sites=3, seed=2024)

    # A user logged into site 0.
    alice = cluster.shell(0, user="alice")
    alice.mkdir("/home")
    alice.mkdir("/home/alice")
    alice.write_file("/home/alice/notes.txt",
                     b"written at site 0, stored wherever LOCUS likes\n")

    # A user at site 2 uses the *same* names; location never appears.
    bob = cluster.shell(2, user="bob")
    data = bob.read_file("/home/alice/notes.txt")
    print(f"site 2 reads /home/alice/notes.txt -> {data.decode()!r}")

    # Bob edits the file remotely; Alice sees the result immediately.
    fd = bob.open("/home/alice/notes.txt", "w")
    bob.lseek(fd, 0, "end")
    bob.write(fd, b"appended from site 2 with the same system calls\n")
    bob.close(fd)    # closing a file commits it (section 2.3.6)
    print("site 0 now sees:")
    print(alice.read_file("/home/alice/notes.txt").decode())

    # Replication: keep three copies of something important.  A file's
    # storage sites must store its parent directory too (section 2.3.7),
    # so the directory is created replicated as well.
    alice.setcopies(3)
    alice.mkdir("/shared")
    alice.write_file("/shared/precious", b"replicated 3 ways")
    cluster.settle()     # let background propagation finish
    print("storage sites of /shared/precious:",
          alice.stat("/shared/precious")["storage_sites"])

    # One storage site dies; the file remains available.
    victim = alice.stat("/shared/precious")["storage_sites"][1]
    print(f"crashing site {victim}...")
    cluster.fail_site(victim)
    print("still readable:",
          alice.read_file("/shared/precious").decode())

    cluster.restart_site(victim)
    print(f"site {victim} restarted and merged back; partition sets:",
          [sorted(s.topology.partition_set) for s in cluster.sites])
    print("network messages exchanged in total:",
          cluster.stats.total_messages)


if __name__ == "__main__":
    main()
