#!/usr/bin/env python
"""Transparent remote devices (paper section 2.4.2).

The department's one line printer hangs off site 2 and the nine-track tape
drive off site 1.  Device nodes live in the single naming tree, so any
process anywhere opens /dev/lp0 or /dev/mt0 with ordinary system calls;
LOCUS routes the i/o to the hardware's site.  The one exception the paper
allows — raw, non-character devices — is refused remotely with advice to
run a process at the hosting site instead.
"""

from collections import deque

from repro import LocusCluster
from repro.errors import EACCES


def main():
    cluster = LocusCluster(n_sites=3, seed=3)

    # Wire the hardware.
    printed = []
    cluster.site(2).proc.devices.register(
        "lp0", write_fn=lambda data: printed.append(data) or len(data))
    tape_blocks = deque([b"payroll-1979.tar|", b"payroll-1980.tar|"])
    cluster.site(1).proc.devices.register(
        "mt0", read_fn=lambda n: tape_blocks.popleft() if tape_blocks
        else b"")
    cluster.site(1).proc.devices.register(
        "rmt0", read_fn=lambda n: b"", character=False)   # raw interface

    admin = cluster.shell(0)
    admin.setcopies(3)
    admin.mkdir("/dev")
    admin.mknod_device("/dev/lp0", host=2, device="lp0")
    admin.mknod_device("/dev/mt0", host=1, device="mt0")
    admin.mknod_device("/dev/rmt0", host=1, device="rmt0", character=False)
    cluster.settle()
    print("device nodes:", admin.readdir("/dev"))

    print("\nA user at site 0 copies the tape to the printer — neither "
          "device is local:")
    src = admin.open("/dev/mt0")
    dst = admin.open("/dev/lp0", "w")
    while True:
        block = admin.read(src, 4096)
        if not block:
            break
        admin.write(dst, block)
    admin.close(src)
    admin.close(dst)
    print("  printer output:", b"".join(printed).decode())

    print("\nThe raw interface refuses remote use, as the paper specifies:")
    try:
        admin.open("/dev/rmt0")
    except EACCES as exc:
        print(f"  {exc}")

    print("\n...so run the dump program *at* the hosting site instead:")
    def dumper(api):
        fd = yield from api.open("/dev/rmt0")
        yield from api.close(fd)
        yield from api.write_file("/dump-done",
                                  f"dumped at site {api.site.site_id}"
                                  .encode())
        return 0

    admin.fork(dumper, dest=1)
    admin.wait()
    print(" ", admin.read_file("/dump-done").decode())


if __name__ == "__main__":
    main()
