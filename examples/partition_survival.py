#!/usr/bin/env python
"""Partitioned operation, merge, and reconciliation (paper sections 4 & 5).

A six-site engineering department's network splits in half (a loose cable
terminator, say).  Both halves keep working — reading, writing, creating
files — and when the cable is fixed the merge protocol reunites the network,
the directory merge unites both sides' work, version vectors detect the one
genuine write-write conflict, and the owner finds mail about it.
"""

from repro import LocusCluster
from repro.errors import ECONFLICT


def show_tree(shell, title):
    names = shell.readdir("/project")
    print(f"  {title}: /project = {names}")


def main():
    cluster = LocusCluster(n_sites=6, seed=7)
    left = cluster.shell(0, user="lefty")
    right = cluster.shell(3, user="righty")

    print("Before the failure: a fully replicated project directory.")
    left.setcopies(6)
    left.mkdir("/project")
    left.write_file("/project/design.txt", b"v1 of the design\n")
    left.write_file("/project/todo", b"- everything\n")
    cluster.settle()
    show_tree(left, "everyone sees")

    print("\n*** the network partitions: {0,1,2} | {3,4,5} ***")
    cluster.partition({0, 1, 2}, {3, 4, 5})
    print("  partition sets:",
          sorted(tuple(sorted(s.topology.partition_set))
                 for s in cluster.sites))

    print("\nBoth halves keep working (section 4.1: updates must be "
          "allowed in every partition).")
    left.write_file("/project/left-report", b"written on the left\n")
    right.write_file("/project/right-report", b"written on the right\n")
    # Non-conflicting: only the left edits the todo list.
    left.write_file("/project/todo", b"- less than everything\n")
    # Conflicting: both sides rewrite the design.
    left.write_file("/project/design.txt", b"v2: the left's grand plan\n")
    right.write_file("/project/design.txt", b"v2: the right's grand plan\n")
    show_tree(left, "left half sees")
    show_tree(right, "right half sees")

    print("\n*** the cable is fixed; the merge protocol runs ***")
    cluster.heal()
    print("  partition sets:",
          sorted(tuple(sorted(s.topology.partition_set))
                 for s in cluster.sites))

    print("\nAfter reconciliation:")
    show_tree(left, "everyone sees")
    print("  todo (single-sided update propagated):",
          right.read_file("/project/todo").decode().strip())

    print("\nThe conflicting design file was detected by version vectors:")
    try:
        left.open("/project/design.txt")
    except ECONFLICT as exc:
        print(f"  open() fails: {exc}")

    mail = cluster.call(0, cluster.site(0).recovery.read_mail("lefty"))
    for m in mail:
        print(f"  mail for lefty: [{m.subject}] {m.body[:60]}...")

    print("\nThe user splits the conflict into two normal files "
          "(section 4.6's trivial tool):")
    new_names = cluster.call(
        0, cluster.site(0).recovery.split_conflict(None,
                                                   "/project/design.txt"))
    cluster.settle()
    for name in new_names:
        print(f"  {name}: {left.read_file(name).decode().strip()}")
    show_tree(left, "final tree")


if __name__ == "__main__":
    main()
